package sched

import (
	"errors"
	"fmt"

	"alltoallx/internal/topo"
)

// Large-world verification. The full verifier (verify.go) symbolically
// executes the assembled schedule — O(p · slots) state — which is exactly
// the cost rank-sliced compilation exists to avoid. This file proves what
// can be proved from one rank slice at a time, in O(p) persistent memory:
//
//   - every local check of the full verifier, per slice: structure, refs
//     in range (per-rank count sums for alltoallv), peers in range, no
//     writes into the user send buffer, the same-round race rules (no
//     read of received data, no overlapping writes, no copy over an
//     issued send's buffer), no undefined reads, the reduction rules
//     (Reduce only in reduction schedules, Step.Op matching the
//     schedule's label, no locally detectable double contribution), and
//     — because a rank's recv buffer is written only by its own steps —
//     the exactly-once delivery accounting for every recv slot, with
//     content checked whenever the written value is locally known;
//   - cross-rank round pairing, incrementally: per round, the send and
//     receive (from, to, length) multisets must agree. Each slice folds
//     its messages into per-round count and commutative-hash
//     accumulators; Finish compares them. Combined with the local
//     duplicate checks this proves one message per ordered pair per round
//     and deadlock-freedom under the round discipline, with multiset
//     equality holding up to a 64-bit hash collision. For alltoallv the
//     same construction proves the per-pair count declarations
//     consistent: every slice folds its VSend row and VRecv column into
//     (src, dst, count) multiset fingerprints that must agree at Finish.
//
// What streaming cannot prove is that a multi-hop block arrives with the
// right *content*, or that a wire-carried partial is complete (both need
// cross-rank dataflow). Below core's slicing threshold the full verifier
// remains authoritative, and property tests pin GenerateRank
// byte-identical to Generate at randomized shapes — so the content proof
// transfers to the sliced path by construction.

// VerifyRank runs every local check on one rank's program. It does not
// prove cross-rank properties; stream all slices through a StreamVerifier
// (or VerifyWorldSliced) for those.
func VerifyRank(rp *RankProgram) error {
	if rp == nil {
		return errors.New("sched: nil rank program")
	}
	sv := NewStreamVerifier(rp.Ranks)
	return sv.Add(rp)
}

// Symbolic slot values beyond locally known ones: slotUndef marks
// never-written slots, slotUnknown data that arrived over the wire
// (defined, but its identity is not locally derivable). Known values are
// collective-specific: for the routing collectives, the local send-space
// offset the data originated at (the self block/blocks — the only
// content a slice can name); for the reductions, blk<<1|1 — a partial of
// result block blk containing this rank's own contribution.
const (
	slotUndef   int64 = -1
	slotUnknown int64 = -2
)

// msgHash folds one message's round, endpoints and length into a 64-bit
// value; per-round sums of these are the commutative multiset
// fingerprints Finish compares. The alltoallv count declarations reuse
// it with ri = -1.
func msgHash(ri, from, to, n int) uint64 {
	x := uint64(ri)
	for _, v := range [3]int{from, to, n} {
		x = (x ^ uint64(v)) * 0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
	}
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// roundAcc accumulates one round's cross-rank message fingerprints.
type roundAcc struct {
	sends, recvs         int
	sendHash, recvHash   uint64
	sendBlocks, recvBlks int
}

// StreamVerifier proves schedule properties incrementally over rank
// slices, in O(p + rounds) persistent memory (plus O(slice) transient per
// Add). Feed every rank's program exactly once (any order), then call
// Finish.
type StreamVerifier struct {
	p       int
	name    string
	coll    Coll
	op      string
	rounds  int
	scratch []int
	started bool
	seen    []bool
	nseen   int
	acc     []roundAcc
	dead    []bool
	// Alltoallv count-declaration fingerprints: every slice's VSend row
	// and VRecv column must describe the same matrix.
	vSendHash, vRecvHash     uint64
	vSendBlocks, vRecvBlocks int
}

// NewStreamVerifier returns a verifier expecting the slices of a p-rank
// world.
func NewStreamVerifier(p int) *StreamVerifier {
	return &StreamVerifier{p: p, seen: make([]bool, p)}
}

// SetDead marks ranks as failed before streaming begins: their slices are
// neither expected nor accepted, surviving slices must not address them,
// and the delivery accounting expects their blocks to stay undelivered.
// This is how a repaired world (Repair) is proved — the surviving slices
// must be a complete, consistent schedule among themselves. Repair is an
// all-to-all facility; dead ranks in other collectives are rejected.
func (sv *StreamVerifier) SetDead(dead ...int) error {
	if sv.started {
		return errors.New("sched: SetDead must precede the first Add")
	}
	if sv.dead == nil {
		sv.dead = make([]bool, sv.p)
	}
	for _, d := range dead {
		if d < 0 || d >= sv.p {
			return fmt.Errorf("sched: dead rank %d out of range 0..%d", d, sv.p-1)
		}
		if !sv.dead[d] {
			sv.dead[d] = true
			sv.seen[d] = true
			sv.nseen++
		}
	}
	return nil
}

// isDead reports whether rank r was marked dead via SetDead.
func (sv *StreamVerifier) isDead(r int) bool { return sv.dead != nil && sv.dead[r] }

// checkSliceHeader validates one slice's collective-describing fields.
func checkSliceHeader(rp *RankProgram) error {
	coll := rp.Collective()
	if !coll.valid() {
		return fmt.Errorf("sched: unknown collective %q", coll)
	}
	if coll.reduction() != (rp.Op != "") {
		if rp.Op == "" {
			return fmt.Errorf("sched: %s rank program must declare its operator label", coll)
		}
		return fmt.Errorf("sched: operator label %q on a non-reduction %s rank program", rp.Op, coll)
	}
	if coll == CollAlltoallv {
		if len(rp.VSend) != rp.Ranks || len(rp.VRecv) != rp.Ranks {
			return fmt.Errorf("sched: alltoallv rank program must declare %d-entry VSend and VRecv counts (have %d and %d)",
				rp.Ranks, len(rp.VSend), len(rp.VRecv))
		}
		for d, n := range rp.VSend {
			if n < 0 {
				return fmt.Errorf("sched: negative count %d for pair %d->%d", n, rp.Rank, d)
			}
		}
		for s, n := range rp.VRecv {
			if n < 0 {
				return fmt.Errorf("sched: negative count %d for pair %d->%d", n, s, rp.Rank)
			}
		}
		if rp.VSend[rp.Rank] != rp.VRecv[rp.Rank] {
			return fmt.Errorf("sched: rank %d declares self count %d in VSend but %d in VRecv",
				rp.Rank, rp.VSend[rp.Rank], rp.VRecv[rp.Rank])
		}
	} else if rp.VSend != nil || rp.VRecv != nil {
		return fmt.Errorf("sched: per-pair counts on a non-alltoallv %s rank program", coll)
	}
	return nil
}

// Add verifies one rank's slice locally and folds its cross-rank
// fingerprints into the stream state.
func (sv *StreamVerifier) Add(rp *RankProgram) error {
	if rp == nil {
		return errors.New("sched: nil rank program")
	}
	p := sv.p
	if rp.Ranks != p {
		return fmt.Errorf("sched: rank program compiled for %d ranks, stream expects %d", rp.Ranks, p)
	}
	if rp.Rank < 0 || rp.Rank >= p {
		return fmt.Errorf("sched: rank program rank %d out of range 0..%d", rp.Rank, p-1)
	}
	if sv.isDead(rp.Rank) {
		return fmt.Errorf("sched: rank %d is marked dead but streamed a slice", rp.Rank)
	}
	if sv.seen[rp.Rank] {
		return fmt.Errorf("sched: rank %d streamed twice", rp.Rank)
	}
	if len(rp.Rounds) == 0 {
		return fmt.Errorf("sched: rank %d program has no rounds (even the trivial schedule needs the self-block copy)", rp.Rank)
	}
	for i, sz := range rp.Scratch {
		if sz <= 0 {
			return fmt.Errorf("sched: scratch space %d has non-positive size %d", i, sz)
		}
	}
	if err := checkSliceHeader(rp); err != nil {
		return err
	}
	if sv.dead != nil && rp.Collective() != CollAlltoall {
		return fmt.Errorf("sched: dead-rank verification applies to all-to-all schedules, not %s", rp.Collective())
	}
	if !sv.started {
		sv.started = true
		sv.name = rp.Name
		sv.coll = rp.Collective()
		sv.op = rp.Op
		sv.rounds = len(rp.Rounds)
		sv.scratch = append([]int(nil), rp.Scratch...)
		sv.acc = make([]roundAcc, sv.rounds)
	} else {
		if rp.Name != sv.name {
			return fmt.Errorf("sched: rank %d program is %q, stream carries %q", rp.Rank, rp.Name, sv.name)
		}
		if rp.Collective() != sv.coll {
			return fmt.Errorf("sched: rank %d program is a %s, stream carries %s", rp.Rank, rp.Collective(), sv.coll)
		}
		if rp.Op != sv.op {
			return fmt.Errorf("sched: rank %d program declares operator %q, stream carries %q", rp.Rank, rp.Op, sv.op)
		}
		if len(rp.Rounds) != sv.rounds {
			return fmt.Errorf("sched: rank %d program has %d rounds, stream carries %d", rp.Rank, len(rp.Rounds), sv.rounds)
		}
		if len(rp.Scratch) != len(sv.scratch) {
			return fmt.Errorf("sched: rank %d program declares %d scratch spaces, stream carries %d", rp.Rank, len(rp.Scratch), len(sv.scratch))
		}
		for i, sz := range rp.Scratch {
			if sz != sv.scratch[i] {
				return fmt.Errorf("sched: rank %d scratch space %d has size %d, stream carries %d", rp.Rank, i, sz, sv.scratch[i])
			}
		}
	}
	if rp.Collective() == CollAlltoallv {
		for d, n := range rp.VSend {
			sv.vSendHash += msgHash(-1, rp.Rank, d, n)
			sv.vSendBlocks += n
		}
		for s, n := range rp.VRecv {
			sv.vRecvHash += msgHash(-1, s, rp.Rank, n)
			sv.vRecvBlocks += n
		}
	}
	if err := sv.walk(rp); err != nil {
		return err
	}
	sv.seen[rp.Rank] = true
	sv.nseen++
	return nil
}

// sliceState is the transient per-slice symbolic machine: recv space and
// scratch slot values, recv write counters, and the per-round race
// stamps, all keyed sparsely so memory stays O(touched slots).
type sliceState struct {
	rp        *RankProgram
	coll      Coll
	reduction bool
	sendSize  int
	recvVal   []int64         // recv-space slot values
	recvCount []uint8         // recv-space writes, must end at exactly 1
	scratch   map[int64]int64 // scratch slot -> value
	recvStamp map[int64]int   // slot -> round a receive writes it
	readStamp map[int64]int   // slot -> round an issued send reads it
	// selfRowOff/selfColOff/selfCount locate the self message in the
	// packed routing layouts: this rank's own blocks occupy send offsets
	// [selfRowOff, selfRowOff+selfCount) and must land at recv offsets
	// [selfColOff, selfColOff+selfCount). (For alltoall both offsets are
	// the rank and the count is 1.)
	selfRowOff, selfColOff, selfCount int
	// fromSeen/toSeen detect duplicate per-round peers, stamped by
	// round+1 so one allocation serves every round of the slice.
	fromSeen, toSeen []int32
}

// slotKey identifies a slot of one buffer space.
func slotKey(buf, off int) int64 { return int64(buf)<<40 | int64(off) }

// checkRef validates a buffer reference against the program's spaces.
func (st *sliceState) checkRef(ref Ref, where string) error {
	size := st.rp.SpaceSize(ref.Buf)
	if size < 0 {
		return fmt.Errorf("%s: unknown buffer space %d", where, ref.Buf)
	}
	if ref.N <= 0 {
		return fmt.Errorf("%s: non-positive length %d", where, ref.N)
	}
	if ref.Off < 0 || ref.Off+ref.N > size {
		return fmt.Errorf("%s: range %d+%d out of space %d (%d blocks)", where, ref.Off, ref.N, ref.Buf, size)
	}
	return nil
}

// read returns the symbolic value of one slot.
func (st *sliceState) read(buf, off int) int64 {
	switch buf {
	case SpaceSend:
		// The send buffer is read-only and pre-filled. Routing: slot off
		// holds the block this rank sends from offset off. Reduction:
		// slot off holds this rank's own contribution to result block
		// off.
		if st.reduction {
			return int64(off)<<1 | 1
		}
		return int64(off)
	case SpaceRecv:
		return st.recvVal[off]
	}
	v, ok := st.scratch[slotKey(buf, off)]
	if !ok {
		return slotUndef
	}
	return v
}

// write stores a symbolic value, enforcing the exactly-once and
// known-content disciplines on the recv space.
func (st *sliceState) write(buf, off int, val int64, where string) error {
	if buf == SpaceRecv {
		st.recvCount[off]++
		if st.recvCount[off] > 1 {
			return fmt.Errorf("%s: recv block %d of rank %d written more than once (block delivered twice)", where, off, st.rp.Rank)
		}
		if val >= 0 {
			if st.reduction {
				blk := int(val >> 1)
				want := st.rp.Rank // reduce-scatter: the single recv block is this rank's result
				if st.coll == CollAllreduce {
					want = off
				}
				if blk != want {
					return fmt.Errorf("%s: recv block %d of rank %d receives the result of block %d, want %d", where, off, st.rp.Rank, blk, want)
				}
			} else if val-int64(st.selfRowOff) != int64(off-st.selfColOff) ||
				val < int64(st.selfRowOff) || val >= int64(st.selfRowOff+st.selfCount) {
				return fmt.Errorf("%s: recv block %d of rank %d receives own send block %d, which belongs at %d",
					where, off, st.rp.Rank, val, int64(st.selfColOff)+val-int64(st.selfRowOff))
			}
		}
		st.recvVal[off] = val
		return nil
	}
	st.scratch[slotKey(buf, off)] = val
	return nil
}

// walk symbolically executes one slice, mirroring the full verifier's
// round logic restricted to this rank's steps, and accumulates the
// cross-rank fingerprints.
func (sv *StreamVerifier) walk(rp *RankProgram) error {
	p, r := sv.p, rp.Rank
	recvSize := rp.SpaceSize(SpaceRecv)
	st := &sliceState{
		rp:        rp,
		coll:      rp.Collective(),
		reduction: rp.Collective().reduction(),
		sendSize:  rp.SpaceSize(SpaceSend),
		recvVal:   make([]int64, recvSize),
		recvCount: make([]uint8, recvSize),
		scratch:   make(map[int64]int64),
		recvStamp: make(map[int64]int),
		readStamp: make(map[int64]int),
		fromSeen:  make([]int32, p),
		toSeen:    make([]int32, p),
	}
	switch st.coll {
	case CollAlltoallv:
		for d := 0; d < r; d++ {
			st.selfRowOff += rp.VSend[d]
		}
		for s := 0; s < r; s++ {
			st.selfColOff += rp.VRecv[s]
		}
		st.selfCount = rp.VSend[r]
	default:
		st.selfRowOff, st.selfColOff, st.selfCount = r, r, 1
	}
	for i := range st.recvVal {
		st.recvVal[i] = slotUndef
	}

	type pending struct {
		buf, off, n int
	}
	var delivers []pending
	for ri, steps := range rp.Rounds {
		stamp := ri + 1
		delivers = delivers[:0]

		// Pass 1: receive-written slots (their data lands at the round's
		// wait, so same-round reads and overlapping writes are races).
		for si, step := range steps {
			if step.Kind != Recv && step.Kind != SendRecv {
				continue
			}
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s) dst", ri, r, si, step.Kind)
			if err := st.checkRef(step.Dst, where); err != nil {
				return err
			}
			if step.Dst.Buf == SpaceSend {
				return fmt.Errorf("%s: schedules must not write the user send buffer", where)
			}
			if step.From < 0 || step.From >= p || step.From == r {
				return fmt.Errorf("sched: round %d rank %d step %d: receive source %d out of range", ri, r, si, step.From)
			}
			if sv.isDead(step.From) {
				return fmt.Errorf("sched: round %d rank %d step %d: receives from dead rank %d", ri, r, si, step.From)
			}
			if st.fromSeen[step.From] == int32(stamp) {
				return fmt.Errorf("sched: round %d: two receives from %d at %d (per-round tags would be ambiguous)", ri, step.From, r)
			}
			st.fromSeen[step.From] = int32(stamp)
			for k := 0; k < step.Dst.N; k++ {
				key := slotKey(step.Dst.Buf, step.Dst.Off+k)
				if st.recvStamp[key] == stamp {
					return fmt.Errorf("sched: round %d rank %d: two receives write slot %v in one round", ri, r, step.Dst.Off+k)
				}
				st.recvStamp[key] = stamp
			}
			delivers = append(delivers, pending{step.Dst.Buf, step.Dst.Off, step.Dst.N})
			sv.acc[ri].recvs++
			sv.acc[ri].recvBlks += step.Dst.N
			sv.acc[ri].recvHash += msgHash(ri, step.From, r, step.Dst.N)
		}

		// Pass 2: copies, reduces and sends in step order.
		for si, step := range steps {
			where := fmt.Sprintf("sched: round %d rank %d step %d (%s)", ri, r, si, step.Kind)
			switch step.Kind {
			case Copy, Reduce:
				if err := st.checkRef(step.Src, where+" src"); err != nil {
					return err
				}
				if err := st.checkRef(step.Dst, where+" dst"); err != nil {
					return err
				}
				if step.Src.N != step.Dst.N {
					return fmt.Errorf("%s: length mismatch src %d, dst %d", where, step.Src.N, step.Dst.N)
				}
				if step.Dst.Buf == SpaceSend {
					return fmt.Errorf("%s: schedules must not write the user send buffer", where)
				}
				if step.Src.Buf == step.Dst.Buf && step.Src.Off < step.Dst.Off+step.Dst.N && step.Dst.Off < step.Src.Off+step.Src.N {
					return fmt.Errorf("%s: src %v and dst %v overlap", where, step.Src, step.Dst)
				}
				if step.Kind == Reduce {
					if !st.reduction {
						return fmt.Errorf("%s: reduce step in a %s schedule", where, st.coll)
					}
					if step.Op != rp.Op {
						return fmt.Errorf("%s: operator %q does not match the schedule's %q", where, step.Op, rp.Op)
					}
				}
				for k := 0; k < step.Src.N; k++ {
					skey := slotKey(step.Src.Buf, step.Src.Off+k)
					dkey := slotKey(step.Dst.Buf, step.Dst.Off+k)
					if st.recvStamp[skey] == stamp {
						return fmt.Errorf("%s: reads slot %d received in the same round (received data is only available in later rounds)", where, step.Src.Off+k)
					}
					if st.recvStamp[dkey] == stamp {
						return fmt.Errorf("%s: writes slot %d a same-round receive also writes", where, step.Dst.Off+k)
					}
					if st.readStamp[dkey] == stamp {
						return fmt.Errorf("%s: overwrites slot %d an earlier send of the round is transmitting", where, step.Dst.Off+k)
					}
					val := st.read(step.Src.Buf, step.Src.Off+k)
					if val == slotUndef {
						return fmt.Errorf("%s: reads undefined data at slot %d", where, step.Src.Off+k)
					}
					if step.Kind == Reduce {
						dval := st.read(step.Dst.Buf, step.Dst.Off+k)
						if dval == slotUndef {
							return fmt.Errorf("%s: reduces into undefined data at slot %d", where, step.Dst.Off+k)
						}
						sKnown, dKnown := val >= 0, dval >= 0
						if sKnown && dKnown && val>>1 != dval>>1 {
							return fmt.Errorf("%s: reduces a partial of block %d into a partial of block %d", where, val>>1, dval>>1)
						}
						if sKnown && dKnown && val&1 == 1 && dval&1 == 1 {
							return fmt.Errorf("%s: contribution of rank %d to block %d would enter twice (double contribution)", where, r, val>>1)
						}
						switch {
						case sKnown:
							// keep val: the combined partial carries the known block
						case dKnown:
							val = dval
						default:
							val = slotUnknown
						}
					}
					if err := st.write(step.Dst.Buf, step.Dst.Off+k, val, where); err != nil {
						return err
					}
				}
			case Send, SendRecv:
				if err := st.checkRef(step.Src, where+" src"); err != nil {
					return err
				}
				if step.To < 0 || step.To >= p || step.To == r {
					return fmt.Errorf("%s: send destination %d out of range", where, step.To)
				}
				if sv.isDead(step.To) {
					return fmt.Errorf("%s: sends to dead rank %d", where, step.To)
				}
				if st.toSeen[step.To] == int32(stamp) {
					return fmt.Errorf("sched: round %d: two sends from %d to %d (per-round tags would be ambiguous)", ri, r, step.To)
				}
				st.toSeen[step.To] = int32(stamp)
				for k := 0; k < step.Src.N; k++ {
					key := slotKey(step.Src.Buf, step.Src.Off+k)
					if st.recvStamp[key] == stamp {
						return fmt.Errorf("%s: sends slot %d received in the same round", where, step.Src.Off+k)
					}
					if st.read(step.Src.Buf, step.Src.Off+k) == slotUndef {
						return fmt.Errorf("%s: sends undefined data at slot %d", where, step.Src.Off+k)
					}
					st.readStamp[key] = stamp
				}
				sv.acc[ri].sends++
				sv.acc[ri].sendBlocks += step.Src.N
				sv.acc[ri].sendHash += msgHash(ri, r, step.To, step.Src.N)
			case Recv:
				// Handled in pass 1.
			default:
				return fmt.Errorf("%s: unknown step kind %q", where, step.Kind)
			}
		}

		// Deliver: received data lands at the round's wait, with contents
		// not locally derivable.
		for _, d := range delivers {
			where := fmt.Sprintf("sched: round %d rank %d delivery", ri, r)
			for k := 0; k < d.n; k++ {
				if err := st.write(d.buf, d.off+k, slotUnknown, where); err != nil {
					return err
				}
			}
		}
	}

	// Delivery accounting: every recv slot of this rank written exactly
	// once (content was checked at write time whenever locally known) —
	// except, for repaired all-to-all worlds, slots of dead sources,
	// which must stay empty.
	for d := 0; d < recvSize; d++ {
		if st.coll == CollAlltoall && sv.isDead(d) {
			if st.recvCount[d] != 0 {
				return fmt.Errorf("sched: rank %d delivers block (%d->%d) of dead rank %d", r, d, r, d)
			}
			continue
		}
		if st.recvCount[d] != 1 {
			switch {
			case st.reduction:
				return fmt.Errorf("sched: result block %d of rank %d never produced", d, r)
			case st.coll == CollAlltoall:
				return fmt.Errorf("sched: block (%d->%d) never delivered", d, r)
			default:
				return fmt.Errorf("sched: recv block %d of rank %d never delivered", d, r)
			}
		}
	}
	return nil
}

// Finish checks the cross-rank properties once every slice has been
// added: full coverage, per-round matching send/receive multisets, and
// (alltoallv) consistent per-pair count declarations across slices.
func (sv *StreamVerifier) Finish() error {
	if sv.nseen != sv.p {
		for r, ok := range sv.seen {
			if !ok {
				return fmt.Errorf("sched: stream verification incomplete: rank %d missing (%d/%d seen)", r, sv.nseen, sv.p)
			}
		}
	}
	for ri, a := range sv.acc {
		if a.sends != a.recvs {
			return fmt.Errorf("sched: round %d: %d sends but %d receives posted (the round discipline would deadlock)", ri, a.sends, a.recvs)
		}
		if a.sendBlocks != a.recvBlks {
			return fmt.Errorf("sched: round %d: %d blocks sent but %d expected by receives", ri, a.sendBlocks, a.recvBlks)
		}
		if a.sendHash != a.recvHash {
			return fmt.Errorf("sched: round %d: send/receive (from, to, length) multisets differ (unmatched or mismatched message)", ri)
		}
	}
	if sv.coll == CollAlltoallv {
		if sv.vSendBlocks != sv.vRecvBlocks {
			return fmt.Errorf("sched: alltoallv count declarations disagree: %d blocks declared sent but %d declared received", sv.vSendBlocks, sv.vRecvBlocks)
		}
		if sv.vSendHash != sv.vRecvHash {
			return errors.New("sched: alltoallv count declarations disagree across slices (some pair's VSend and VRecv entries differ)")
		}
	}
	return nil
}

// VerifyWorldSliced streams every rank's GenerateRank slice of the named
// generator through a StreamVerifier: the large-world verification mode.
// Memory stays O(p + one slice); time is O(total schedule size) — the
// same steps the world will execute, never the assembled schedule.
func VerifyWorldSliced(name string, p int, m *topo.Mapping) error {
	sv := NewStreamVerifier(p)
	for r := 0; r < p; r++ {
		rp, err := GenerateRank(name, p, r, m)
		if err != nil {
			return err
		}
		if err := sv.Add(rp); err != nil {
			return err
		}
	}
	return sv.Finish()
}
