package schedreg

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// Client talks to a running a2aschedd. Error discipline mirrors the
// fallback order consumers implement: an error wrapping ErrRejected is
// a definitive negative verdict worth caching; an error wrapping
// ErrUnavailable (daemon down, saturated, or answering garbage) means
// fall back to local compilation and try again later.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7643"). The scheme defaults to http:// when
// absent.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 60 * time.Second},
	}
}

// Fetch retrieves the compiled program of gen for rank in a p-rank
// world mapped by m (nil for flat). The returned program is decoded and
// shape-checked but not re-verified — callers that execute it should
// run sched.VerifyRank, since the bytes crossed a network.
func (c *Client) Fetch(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
	k := KeyFor(gen, p, m, rank)
	q := url.Values{}
	q.Set("gen", k.Gen)
	q.Set("ranks", fmt.Sprint(k.Ranks))
	q.Set("rank", fmt.Sprint(k.Rank))
	if k.Nodes > 0 {
		q.Set("nodes", fmt.Sprint(k.Nodes))
		q.Set("ppn", fmt.Sprint(k.PPN))
	}
	resp, err := c.hc.Get(c.base + "/v1/program?" + q.Encode())
	if err != nil {
		return nil, fmt.Errorf("schedreg: %s: %w: %w", k, ErrUnavailable, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		rp, err := sched.DecodeRank(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("schedreg: %s: %w: daemon sent an undecodable program: %w", k, ErrUnavailable, err)
		}
		if !strings.HasPrefix(rp.Name, k.Gen) || rp.Ranks != k.Ranks || rp.Rank != k.Rank {
			return nil, fmt.Errorf("schedreg: %s: %w: daemon sent %s@p%d rank %d", k, ErrUnavailable, rp.Name, rp.Ranks, rp.Rank)
		}
		return rp, nil
	case http.StatusUnprocessableEntity:
		return nil, fmt.Errorf("schedreg: %s@%s: %w: %s", k.Gen, k.World(), ErrRejected, readBody(resp.Body))
	default:
		return nil, fmt.Errorf("schedreg: %s: %w: daemon answered %s: %s", k, ErrUnavailable, resp.Status, readBody(resp.Body))
	}
}

// Stats fetches the daemon's registry counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return Stats{}, fmt.Errorf("schedreg: stats: %w: %w", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("schedreg: stats: %w: daemon answered %s", ErrUnavailable, resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, fmt.Errorf("schedreg: stats: %w: %w", ErrUnavailable, err)
	}
	return st, nil
}

// Healthy probes /healthz; nil means the daemon is up.
func (c *Client) Healthy() error {
	resp, err := c.hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("schedreg: %w: %w", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("schedreg: %w: daemon answered %s", ErrUnavailable, resp.Status)
	}
	return nil
}

// readBody drains a bounded amount of an error response for the
// message.
func readBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	return strings.TrimSpace(string(b))
}
