package schedreg

import (
	"errors"

	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// Fetcher adapters translating registry/daemon results into the
// three-valued contract of core.SetSchedFetcher:
//
//	(rp, nil)   — hit: the caller verifies the program locally and
//	              skips world-level verification;
//	(nil, err)  — definitive rejection: the generator cannot serve the
//	              world, the caller negative-caches the verdict;
//	(nil, nil)  — unavailable: fall through to local compilation.
//
// Both adapters are structurally assignable to core.SchedFetcher; the
// cmd wiring does core.SetSchedFetcher(schedreg.ClientFetcher(cl))
// without this package importing core.

// RegistryFetcher serves rank programs straight from a disk registry
// opened in-process (no daemon). Compilation misses compile into the
// registry, so concurrent jobs sharing the directory still compile each
// world once. I/O failures are reported as unavailable (nil, nil): the
// caller's local compile keeps the job running and the registry is
// retried on the next world.
func RegistryFetcher(r *Registry) func(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
	return func(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
		rp, err := r.GetOrCompile(KeyFor(gen, p, m, rank))
		switch {
		case err == nil:
			return rp, nil
		case errors.Is(err, ErrRejected):
			return nil, err
		default:
			return nil, nil
		}
	}
}

// ClientFetcher serves rank programs from a running a2aschedd. Daemon
// outages and saturation (ErrUnavailable) are reported as (nil, nil) so
// callers fall back to local compilation; only a 422 rejection — a
// definitive verdict about the (generator, world) pair — propagates as
// an error worth negative-caching.
func ClientFetcher(c *Client) func(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
	return func(gen string, p int, m *topo.Mapping, rank int) (*sched.RankProgram, error) {
		rp, err := c.Fetch(gen, p, m, rank)
		switch {
		case err == nil:
			return rp, nil
		case errors.Is(err, ErrRejected):
			return nil, err
		default:
			return nil, nil
		}
	}
}
