// Package schedreg is the schedule service: a disk-backed,
// content-addressed registry of compiled-and-verified rank programs,
// shared across processes, plus the HTTP daemon (cmd/a2aschedd) and
// client that serve it over the network. It layers *under* the
// in-process schedule cache of internal/core: the cache bounds what one
// process retains, the registry makes compilation happen once per
// machine (or once per cluster, through the daemon) instead of once per
// process.
//
// Layout under the registry root:
//
//	objects/<sha256[:2]>/<sha256>.json   content-addressed rank programs
//	keys/<gen>/<world>/rank-<r>.json     ref: {"sha256": "..."}
//	keys/<gen>/<world>/VERIFIED          world passed schedule verification
//	keys/<gen>/<world>/REJECTED          generator rejected the world (negative cache)
//
// where <world> is "p<ranks>-<nodes>x<ppn>" or "p<ranks>-flat". Every
// write goes through the shared artifact discipline (temp file +
// rename), so concurrent registries over the same root — including
// different processes — never observe torn state, and content
// addressing makes duplicate writes idempotent.
package schedreg

import (
	"errors"
	"fmt"
	"regexp"

	"alltoallx/internal/topo"
)

// ErrRejected marks a definitive negative verdict: the generator
// rejected this (generator, world) pair — e.g. hypercube at a
// non-power-of-2 rank count — and will keep rejecting it. Callers
// should cache the rejection rather than retry.
var ErrRejected = errors.New("generator rejected this world")

// ErrUnavailable marks a transient service failure — daemon down,
// at capacity, or a malformed response. Callers should fall back to
// local compilation, not treat the world as rejected.
var ErrUnavailable = errors.New("schedule service unavailable")

// Key identifies one compiled rank program: the generator, the world
// shape it was compiled for, and the rank whose slice it is. Nodes and
// PPN are zero for a flat (topology-less) world; generators consume
// only the nodes x ppn grid, so the pair fingerprints everything the
// compilation depends on.
type Key struct {
	Gen   string `json:"gen"`
	Ranks int    `json:"ranks"`
	Nodes int    `json:"nodes,omitempty"`
	PPN   int    `json:"ppn,omitempty"`
	Rank  int    `json:"rank"`
}

// KeyFor builds the key of gen's program for rank in a p-rank world
// mapped by m (nil for flat).
func KeyFor(gen string, p int, m *topo.Mapping, rank int) Key {
	k := Key{Gen: gen, Ranks: p, Rank: rank}
	if m != nil {
		k.Nodes, k.PPN = m.Nodes(), m.PPN()
	}
	return k
}

// World names the (ranks, topology) shape: "p32-4x8" or "p6-flat".
// It is both the registry directory name and the world half of every
// error message.
func (k Key) World() string {
	if k.Nodes > 0 {
		return fmt.Sprintf("p%d-%dx%d", k.Ranks, k.Nodes, k.PPN)
	}
	return fmt.Sprintf("p%d-flat", k.Ranks)
}

// String renders the full key for error attribution:
// "torus@p32-4x8 rank 3".
func (k Key) String() string {
	return fmt.Sprintf("%s@%s rank %d", k.Gen, k.World(), k.Rank)
}

// Mapping reconstructs a topology mapping carrying the key's grid. The
// node internals (sockets, NUMA) are synthetic — schedule generators
// consume only Nodes() and PPN(), so any spec wide enough to hold ppn
// ranks yields the identical schedule.
func (k Key) Mapping() (*topo.Mapping, error) {
	if k.Nodes == 0 {
		return nil, nil
	}
	m, err := topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: k.PPN}, k.Nodes, k.PPN)
	if err != nil {
		return nil, fmt.Errorf("schedreg: %s: %w", k, err)
	}
	return m, nil
}

// genName restricts generator names to path-safe tokens: the generator
// is a directory component under keys/, so nothing resembling a path
// may pass.
var genName = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// validate rejects keys that could not name a real compilation before
// any disk or generator work happens.
func (k Key) validate() error {
	if !genName.MatchString(k.Gen) {
		return fmt.Errorf("schedreg: invalid generator name %q", k.Gen)
	}
	if k.Ranks < 2 {
		return fmt.Errorf("schedreg: %s: world needs at least 2 ranks", k)
	}
	if k.Rank < 0 || k.Rank >= k.Ranks {
		return fmt.Errorf("schedreg: %s: rank out of range 0..%d", k, k.Ranks-1)
	}
	if k.Nodes < 0 || k.PPN < 0 || (k.Nodes > 0) != (k.PPN > 0) {
		return fmt.Errorf("schedreg: %s: nodes/ppn must both be set or both be zero", k)
	}
	return nil
}
