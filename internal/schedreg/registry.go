package schedreg

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"alltoallx/internal/artifact"
	"alltoallx/internal/sched"
	"alltoallx/internal/singleflight"
)

// SliceRanks is the whole-world compilation ceiling, mirroring the
// in-process threshold of internal/core (schedSliceRanks): at or below
// it a registry miss compiles and verifies the assembled schedule and
// persists every rank's slice in one pass; above it, the world is
// verified once by the streaming verifier and rank programs are
// compiled individually on demand — O(slice), never O(p^2).
const SliceRanks = 128

// Test seams: the compilation entry points, swappable so tests can
// count generator invocations and prove the exactly-once guarantee
// (a second process serving from disk must never reach these).
var (
	generate          = sched.Generate
	generateRank      = sched.GenerateRank
	verifyWorldSliced = sched.VerifyWorldSliced
)

// Stats are the registry's lifetime counters (per Registry instance,
// not per root — a fresh process starts from zero even over a warm
// root).
type Stats struct {
	// Hits counts lookups served from disk without compiling.
	Hits int64 `json:"hits"`
	// Misses counts lookups that found nothing on disk and went to the
	// compile path.
	Misses int64 `json:"misses"`
	// NegativeHits counts lookups answered by a REJECTED marker.
	NegativeHits int64 `json:"negative_hits"`
	// Compiles counts generator invocations (whole worlds and single
	// rank slices alike).
	Compiles int64 `json:"compiles"`
}

// Registry is a disk-backed store of compiled-and-verified rank
// programs. It is safe for concurrent use; concurrent use of several
// Registry instances (or processes) over the same root is safe too —
// all writes are atomic and content-addressed — though the
// compile-once guarantee is then per instance, not global.
type Registry struct {
	root string
	fl   singleflight.Group

	hits, misses, negHits, compiles atomic.Int64
}

// Open creates (if needed) and opens a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "keys")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("schedreg: opening registry at %s: %w", dir, err)
		}
	}
	return &Registry{root: dir}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// Stats returns a snapshot of the lifetime counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Hits:         r.hits.Load(),
		Misses:       r.misses.Load(),
		NegativeHits: r.negHits.Load(),
		Compiles:     r.compiles.Load(),
	}
}

func (r *Registry) worldDir(k Key) string {
	return filepath.Join(r.root, "keys", k.Gen, k.World())
}
func (r *Registry) refPath(k Key) string {
	return filepath.Join(r.worldDir(k), fmt.Sprintf("rank-%d.json", k.Rank))
}
func (r *Registry) verifiedPath(k Key) string { return filepath.Join(r.worldDir(k), "VERIFIED") }
func (r *Registry) rejectedPath(k Key) string { return filepath.Join(r.worldDir(k), "REJECTED") }
func (r *Registry) objectPath(sha string) string {
	return filepath.Join(r.root, "objects", sha[:2], sha+".json")
}

// ref is the content of a rank-<r>.json file.
type ref struct {
	SHA256 string `json:"sha256"`
}

// rejection is the content of a REJECTED marker.
type rejection struct {
	Error string `json:"error"`
}

// rejErr renders the uniform negative verdict, identical whether the
// rejection was just produced or read back from the marker.
func rejErr(k Key, cause string) error {
	return fmt.Errorf("schedreg: %s@%s: %w: %s", k.Gen, k.World(), ErrRejected, cause)
}

// Lookup serves k from disk state only — negative marker, then
// ref + verified marker + integrity-checked object — never compiling.
// ok reports whether the registry had a verdict (a program or a
// rejection); !ok means the caller may compile.
func (r *Registry) Lookup(k Key) (*sched.RankProgram, error, bool) {
	if err := k.validate(); err != nil {
		return nil, err, true
	}
	rp, err, ok := r.lookup(k)
	if ok {
		if err == nil {
			r.hits.Add(1)
		} else if errors.Is(err, ErrRejected) {
			r.negHits.Add(1)
		}
	}
	return rp, err, ok
}

// lookup is Lookup without counter updates (the compile path re-reads
// its own writes through it).
func (r *Registry) lookup(k Key) (*sched.RankProgram, error, bool) {
	if b, err := os.ReadFile(r.rejectedPath(k)); err == nil {
		var rej rejection
		if jerr := json.Unmarshal(b, &rej); jerr != nil {
			return nil, fmt.Errorf("schedreg: %s: corrupt REJECTED marker: %w", k, jerr), true
		}
		return nil, rejErr(k, rej.Error), true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("schedreg: %s: reading REJECTED marker: %w", k, err), true
	}
	if _, err := os.Stat(r.verifiedPath(k)); err != nil {
		if os.IsNotExist(err) {
			return nil, nil, false
		}
		return nil, fmt.Errorf("schedreg: %s: reading VERIFIED marker: %w", k, err), true
	}
	b, err := os.ReadFile(r.refPath(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, false
		}
		return nil, fmt.Errorf("schedreg: %s: reading ref: %w", k, err), true
	}
	var rf ref
	if err := json.Unmarshal(b, &rf); err != nil {
		return nil, fmt.Errorf("schedreg: %s: corrupt ref: %w", k, err), true
	}
	rp, err := r.loadObject(k, rf.SHA256)
	if err != nil {
		return nil, err, true
	}
	return rp, nil, true
}

// loadObject reads, integrity-checks, decodes and locally re-verifies
// the content-addressed program sha. The registry never serves an
// unverified program: the hash proves the bytes are the ones written,
// VerifyRank proves those bytes still encode a well-formed slice.
func (r *Registry) loadObject(k Key, sha string) (*sched.RankProgram, error) {
	if len(sha) != 64 {
		return nil, fmt.Errorf("schedreg: %s: ref holds malformed object hash %q", k, sha)
	}
	b, err := os.ReadFile(r.objectPath(sha))
	if err != nil {
		return nil, fmt.Errorf("schedreg: %s: reading object %s: %w", k, sha[:12], err)
	}
	if got := hexSum(b); got != sha {
		return nil, fmt.Errorf("schedreg: %s: object %s is corrupt (content hashes to %s)", k, sha[:12], got[:12])
	}
	rp, err := sched.DecodeRank(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("schedreg: %s: object %s: %w", k, sha[:12], err)
	}
	// Generators name schedules with a shape suffix ("torus3x4"), so the
	// generator match is a prefix check.
	if !strings.HasPrefix(rp.Name, k.Gen) || rp.Ranks != k.Ranks || rp.Rank != k.Rank {
		return nil, fmt.Errorf("schedreg: %s: object %s holds %s@p%d rank %d — ref points at the wrong program",
			k, sha[:12], rp.Name, rp.Ranks, rp.Rank)
	}
	if err := sched.VerifyRank(rp); err != nil {
		return nil, fmt.Errorf("schedreg: %s: object %s failed verification: %w", k, sha[:12], err)
	}
	return rp, nil
}

func hexSum(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// GetOrCompile serves k, compiling on a registry miss. Concurrent
// callers for the same world (small path) or the same rank (large
// path) coalesce into one compilation; a generator rejection is
// persisted as a REJECTED marker so no process ever re-runs a
// generator against a world it cannot handle.
func (r *Registry) GetOrCompile(k Key) (*sched.RankProgram, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	if rp, err, ok := r.Lookup(k); ok {
		return rp, err
	}
	r.misses.Add(1)
	if k.Ranks <= SliceRanks {
		if _, err, _ := r.fl.Do("world|"+r.worldDir(k), func() (any, error) {
			return nil, r.compileWorld(k)
		}); err != nil {
			return nil, err
		}
	} else {
		if _, err, _ := r.fl.Do("verify|"+r.worldDir(k), func() (any, error) {
			return nil, r.verifyWorld(k)
		}); err != nil {
			return nil, err
		}
		v, err, _ := r.fl.Do("rank|"+r.refPath(k), func() (any, error) {
			return r.compileRank(k)
		})
		if err != nil {
			return nil, err
		}
		if rp, ok := v.(*sched.RankProgram); ok && rp != nil {
			return rp, nil
		}
	}
	rp, err, ok := r.lookup(k)
	if !ok {
		return nil, fmt.Errorf("schedreg: %s: compiled but absent from the registry", k)
	}
	return rp, err
}

// compileWorld is the at-or-below-threshold miss path: compile the
// assembled schedule, verify it, persist every rank's slice, then mark
// the world VERIFIED. Joiners (and restarted processes) re-read from
// disk. Idempotent: a concurrent or earlier writer leaves identical
// content-addressed state.
func (r *Registry) compileWorld(k Key) error {
	if _, err := os.Stat(r.verifiedPath(k)); err == nil {
		return nil // another instance finished the world while we queued
	}
	m, err := k.Mapping()
	if err != nil {
		return err
	}
	r.compiles.Add(1)
	s, err := generate(k.Gen, k.Ranks, m)
	if err != nil {
		return r.reject(k, err)
	}
	if err := sched.Verify(s); err != nil {
		return r.reject(k, fmt.Errorf("failed verification: %w", err))
	}
	for rank := 0; rank < k.Ranks; rank++ {
		rp, err := sched.Slice(s, rank)
		if err != nil {
			return fmt.Errorf("schedreg: %s@%s rank %d: %w", k.Gen, k.World(), rank, err)
		}
		rk := k
		rk.Rank = rank
		if err := r.putProgram(rk, rp); err != nil {
			return err
		}
	}
	return r.markVerified(k)
}

// verifyWorld is the above-threshold world gate: one streaming
// cross-rank verification per world, persisted as the VERIFIED marker
// so later processes skip it entirely.
func (r *Registry) verifyWorld(k Key) error {
	if _, err := os.Stat(r.verifiedPath(k)); err == nil {
		return nil
	}
	m, err := k.Mapping()
	if err != nil {
		return err
	}
	if err := verifyWorldSliced(k.Gen, k.Ranks, m); err != nil {
		return r.reject(k, fmt.Errorf("failed streamed verification: %w", err))
	}
	return r.markVerified(k)
}

// compileRank is the above-threshold per-rank miss path. The world is
// already VERIFIED (verifyWorld ran the identical local checks on every
// slice, and generation is deterministic), so no per-slice re-check.
func (r *Registry) compileRank(k Key) (*sched.RankProgram, error) {
	m, err := k.Mapping()
	if err != nil {
		return nil, err
	}
	r.compiles.Add(1)
	rp, err := generateRank(k.Gen, k.Ranks, k.Rank, m)
	if err != nil {
		// Key validation screened rank-range errors, so whatever the
		// generator objects to here is a property of the world.
		return nil, r.reject(k, err)
	}
	if err := r.putProgram(k, rp); err != nil {
		return nil, err
	}
	return rp, nil
}

// putProgram persists rp as a content-addressed object plus the ref
// that names it. Writing an object that already exists is skipped —
// generation is deterministic, so the bytes would be identical.
func (r *Registry) putProgram(k Key, rp *sched.RankProgram) error {
	var buf bytes.Buffer
	if err := rp.Encode(&buf); err != nil {
		return fmt.Errorf("schedreg: %s: encoding program: %w", k, err)
	}
	b := buf.Bytes()
	sha := hexSum(b)
	op := r.objectPath(sha)
	if _, err := os.Stat(op); err != nil {
		if err := os.MkdirAll(filepath.Dir(op), 0o755); err != nil {
			return fmt.Errorf("schedreg: %s: creating object dir: %w", k, err)
		}
		if err := artifact.Save(op, fmt.Sprintf("schedreg: %s: saving object", k), func(w io.Writer) error {
			_, err := w.Write(b)
			return err
		}); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(r.worldDir(k), 0o755); err != nil {
		return fmt.Errorf("schedreg: %s: creating world dir: %w", k, err)
	}
	return artifact.Save(r.refPath(k), fmt.Sprintf("schedreg: %s: saving ref", k), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(ref{SHA256: sha})
	})
}

// markVerified persists the world's verification verdict.
func (r *Registry) markVerified(k Key) error {
	if err := os.MkdirAll(r.worldDir(k), 0o755); err != nil {
		return fmt.Errorf("schedreg: %s@%s: creating world dir: %w", k.Gen, k.World(), err)
	}
	return artifact.Save(r.verifiedPath(k), fmt.Sprintf("schedreg: %s@%s: saving VERIFIED marker", k.Gen, k.World()),
		func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "verified\n")
			return err
		})
}

// reject persists the negative verdict and returns it in the uniform
// rejection form. The marker is what makes the negative cache
// cross-process: a restarted registry answers from it without touching
// the generator.
func (r *Registry) reject(k Key, cause error) error {
	if err := os.MkdirAll(r.worldDir(k), 0o755); err != nil {
		return fmt.Errorf("schedreg: %s@%s: creating world dir: %w", k.Gen, k.World(), err)
	}
	if err := artifact.Save(r.rejectedPath(k), fmt.Sprintf("schedreg: %s@%s: saving REJECTED marker", k.Gen, k.World()),
		func(w io.Writer) error {
			return json.NewEncoder(w).Encode(rejection{Error: cause.Error()})
		}); err != nil {
		return err
	}
	return rejErr(k, cause.Error())
}

// Entry summarizes one (generator, world) directory for List.
type Entry struct {
	Gen      string `json:"gen"`
	World    string `json:"world"`
	Verified bool   `json:"verified"`
	Rejected bool   `json:"rejected"`
	Programs int    `json:"programs"`
	Bytes    int64  `json:"bytes"`
}

// List walks the registry and summarizes every (generator, world) it
// holds, sorted by generator then world. Bytes sums the referenced
// objects' on-disk sizes (shared objects are counted once per ref that
// names them — the number a consumer of that world would download).
func (r *Registry) List() ([]Entry, error) {
	keysDir := filepath.Join(r.root, "keys")
	gens, err := os.ReadDir(keysDir)
	if err != nil {
		return nil, fmt.Errorf("schedreg: listing registry at %s: %w", r.root, err)
	}
	var out []Entry
	for _, g := range gens {
		if !g.IsDir() {
			continue
		}
		worlds, err := os.ReadDir(filepath.Join(keysDir, g.Name()))
		if err != nil {
			return nil, fmt.Errorf("schedreg: listing generator %s: %w", g.Name(), err)
		}
		for _, w := range worlds {
			if !w.IsDir() {
				continue
			}
			e := Entry{Gen: g.Name(), World: w.Name()}
			dir := filepath.Join(keysDir, g.Name(), w.Name())
			files, err := os.ReadDir(dir)
			if err != nil {
				return nil, fmt.Errorf("schedreg: listing %s@%s: %w", e.Gen, e.World, err)
			}
			for _, f := range files {
				switch {
				case f.Name() == "VERIFIED":
					e.Verified = true
				case f.Name() == "REJECTED":
					e.Rejected = true
				case strings.HasPrefix(f.Name(), "rank-"):
					e.Programs++
					var rf ref
					if b, err := os.ReadFile(filepath.Join(dir, f.Name())); err == nil && json.Unmarshal(b, &rf) == nil && len(rf.SHA256) == 64 {
						if st, err := os.Stat(r.objectPath(rf.SHA256)); err == nil {
							e.Bytes += st.Size()
						}
					}
				}
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gen != out[j].Gen {
			return out[i].Gen < out[j].Gen
		}
		return out[i].World < out[j].World
	})
	return out, nil
}
