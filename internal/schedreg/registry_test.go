package schedreg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// seamCounters instruments the compilation seams for the duration of a
// test, so tests can prove the generator did or did not run. Tests that
// install counters must not run in parallel (the seams are package
// globals).
type seamCounters struct {
	generates, rankGenerates, worldVerifies atomic.Int64
}

func countSeams(t *testing.T) *seamCounters {
	t.Helper()
	var c seamCounters
	og, ogr, ovw := generate, generateRank, verifyWorldSliced
	generate = func(name string, p int, m *topo.Mapping) (*sched.Schedule, error) {
		c.generates.Add(1)
		return og(name, p, m)
	}
	generateRank = func(name string, p, rank int, m *topo.Mapping) (*sched.RankProgram, error) {
		c.rankGenerates.Add(1)
		return ogr(name, p, rank, m)
	}
	verifyWorldSliced = func(name string, p int, m *topo.Mapping) error {
		c.worldVerifies.Add(1)
		return ovw(name, p, m)
	}
	t.Cleanup(func() { generate, generateRank, verifyWorldSliced = og, ogr, ovw })
	return &c
}

func mustMapping(t *testing.T, nodes, ppn int) *topo.Mapping {
	t.Helper()
	m, err := topo.NewMapping(topo.Spec{Sockets: 1, NumaPerSocket: 1, CoresPerNuma: ppn}, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func encodeRP(t *testing.T, rp *sched.RankProgram) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGetOrCompileRoundTrip: a miss compiles and persists; the result
// is byte-identical to direct generation; a second call is a pure disk
// hit.
func TestGetOrCompileRoundTrip(t *testing.T) {
	c := countSeams(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, 3, 4)
	k := KeyFor("torus", 12, m, 5)

	rp, err := reg.GetOrCompile(k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.GenerateRank("torus", 12, 5, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRP(t, rp), encodeRP(t, want)) {
		t.Fatal("registry program differs from direct generation")
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("whole-world generator ran %d times, want 1", got)
	}

	rp2, err := reg.GetOrCompile(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRP(t, rp2), encodeRP(t, want)) {
		t.Fatal("second fetch differs")
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("second fetch re-ran the generator (%d runs)", got)
	}
	st := reg.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Compiles != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 compile", st)
	}
}

// TestCompileOnceAcrossRegistryInstances is the acceptance criterion:
// two registry instances over one root (two processes, or one
// restarted) compile a key exactly once — the second serves from disk
// with zero generator invocations, byte-identically.
func TestCompileOnceAcrossRegistryInstances(t *testing.T) {
	c := countSeams(t)
	root := t.TempDir()
	m := mustMapping(t, 2, 4)
	k := KeyFor("ring", 8, m, 3)

	reg1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	first, err := reg1.GetOrCompile(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.generates.Load() + c.rankGenerates.Load(); got != 1 {
		t.Fatalf("first instance invoked generators %d times, want 1", got)
	}

	reg2, err := Open(root) // a second process: fresh instance, same root
	if err != nil {
		t.Fatal(err)
	}
	second, err := reg2.GetOrCompile(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.generates.Load() + c.rankGenerates.Load(); got != 1 {
		t.Fatalf("second instance invoked generators (total %d runs, want 1)", got)
	}
	if !bytes.Equal(encodeRP(t, first), encodeRP(t, second)) {
		t.Fatal("instances disagree on program bytes")
	}
	if st := reg2.Stats(); st.Hits != 1 || st.Misses != 0 || st.Compiles != 0 {
		t.Fatalf("second instance stats = %+v, want a pure hit", st)
	}
	// Every sibling rank was persisted by the world compilation: rank 6
	// is a hit too, still with no generator run.
	k6 := k
	k6.Rank = 6
	if _, err := reg2.GetOrCompile(k6); err != nil {
		t.Fatal(err)
	}
	if got := c.generates.Load() + c.rankGenerates.Load(); got != 1 {
		t.Fatalf("sibling rank fetch invoked generators (total %d runs)", got)
	}
}

// TestNegativeCache: a rejected world is persisted; later instances
// answer from the marker without re-running the generator, and the
// verdict wraps ErrRejected with full key context.
func TestNegativeCache(t *testing.T) {
	c := countSeams(t)
	root := t.TempDir()
	reg1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFor("hypercube", 6, nil, 0) // hypercube needs a power of 2
	_, err = reg1.GetOrCompile(k)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("generator ran %d times, want 1", got)
	}

	reg2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg2.GetOrCompile(k)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("second instance: want ErrRejected, got %v", err)
	}
	for _, frag := range []string{"hypercube", "p6-flat", "power-of-two"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("rejection %q does not mention %q", err, frag)
		}
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("second instance re-ran the generator (%d runs)", got)
	}
	if st := reg2.Stats(); st.NegativeHits != 1 || st.Compiles != 0 {
		t.Fatalf("second instance stats = %+v, want 1 negative hit, 0 compiles", st)
	}
}

// TestLargeWorldSlicedPath: above SliceRanks the registry verifies the
// world once (streamed) and compiles only the requested rank's slice —
// and a restarted instance reuses both the marker and the slice.
func TestLargeWorldSlicedPath(t *testing.T) {
	c := countSeams(t)
	root := t.TempDir()
	p := SliceRanks + 2
	k := KeyFor("direct", p, nil, 7)

	reg1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := reg1.GetOrCompile(k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.GenerateRank("direct", p, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRP(t, rp), encodeRP(t, want)) {
		t.Fatal("sliced-path program differs from direct generation")
	}
	if c.generates.Load() != 0 {
		t.Fatal("sliced path materialized the whole world")
	}
	if got := c.worldVerifies.Load(); got != 1 {
		t.Fatalf("streamed verification ran %d times, want 1", got)
	}
	if got := c.rankGenerates.Load(); got != 1 {
		t.Fatalf("rank generator ran %d times, want 1", got)
	}
	// Only the requested rank was persisted.
	refs, err := filepath.Glob(filepath.Join(root, "keys", "direct", k.World(), "rank-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("found %d rank refs, want 1 (on-demand slicing)", len(refs))
	}

	reg2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.GetOrCompile(k); err != nil {
		t.Fatal(err)
	}
	if c.worldVerifies.Load() != 1 || c.rankGenerates.Load() != 1 {
		t.Fatalf("restart re-did work: %d verifies, %d rank compiles",
			c.worldVerifies.Load(), c.rankGenerates.Load())
	}
	// A sibling rank reuses the VERIFIED marker but compiles its own slice.
	k9 := k
	k9.Rank = 9
	if _, err := reg2.GetOrCompile(k9); err != nil {
		t.Fatal(err)
	}
	if c.worldVerifies.Load() != 1 {
		t.Fatal("sibling rank re-verified the world")
	}
	if got := c.rankGenerates.Load(); got != 2 {
		t.Fatalf("rank generator ran %d times, want 2", got)
	}
}

// TestConcurrentGetOrCompile: goroutines racing on the same and
// different ranks of one world produce one world compilation and
// byte-identical programs. Run with -race.
func TestConcurrentGetOrCompile(t *testing.T) {
	c := countSeams(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, 4, 4)
	const goroutines = 32
	var wg sync.WaitGroup
	progs := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rp, err := reg.GetOrCompile(KeyFor("torus", 16, m, i%16))
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			if err := rp.Encode(&buf); err != nil {
				errs[i] = err
				return
			}
			progs[i] = buf.Bytes()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("generator ran %d times under contention, want 1", got)
	}
	for i := 0; i < goroutines; i++ {
		j := (i + 16) % goroutines // same rank, different goroutine
		if !bytes.Equal(progs[i], progs[j]) {
			t.Fatalf("goroutines %d and %d disagree on rank %d's program", i, j, i%16)
		}
	}
}

// TestErrorAttribution pins satellite requirement: registry I/O errors
// carry the (generator, world, rank) that produced them.
func TestErrorAttribution(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, 2, 4)
	k := KeyFor("ring", 8, m, 3)
	if _, err := reg.GetOrCompile(k); err != nil {
		t.Fatal(err)
	}

	// Corrupt the object rank 3's ref points at.
	var rf ref
	b, err := os.ReadFile(reg.refPath(k))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(reg.objectPath(rf.SHA256), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err, ok := Open2(t, reg.Root()).Lookup(k)
	if !ok || err == nil {
		t.Fatal("corrupt object went unnoticed")
	}
	for _, frag := range []string{"ring", "p8-2x4", "rank 3", "corrupt"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}

	// A missing object is equally attributable.
	if err := os.Remove(reg.objectPath(rf.SHA256)); err != nil {
		t.Fatal(err)
	}
	_, err, _ = Open2(t, reg.Root()).Lookup(k)
	if err == nil {
		t.Fatal("missing object went unnoticed")
	}
	for _, frag := range []string{"ring", "p8-2x4", "rank 3"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

// Open2 opens a fresh instance over root, failing the test on error.
func Open2(t *testing.T, root string) *Registry {
	t.Helper()
	reg, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestKeyValidation: malformed keys are refused before any disk or
// generator work.
func TestKeyValidation(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Key{
		{Gen: "", Ranks: 8, Rank: 0},
		{Gen: "../escape", Ranks: 8, Rank: 0},
		{Gen: "ring", Ranks: 1, Rank: 0},
		{Gen: "ring", Ranks: 8, Rank: 8},
		{Gen: "ring", Ranks: 8, Rank: -1},
		{Gen: "ring", Ranks: 8, Rank: 0, Nodes: 2},
	}
	for _, k := range bad {
		if _, err := reg.GetOrCompile(k); err == nil {
			t.Errorf("key %+v accepted", k)
		}
	}
}

// TestList summarizes registry contents after mixed outcomes.
func TestList(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, 2, 4)
	if _, err := reg.GetOrCompile(KeyFor("ring", 8, m, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.GetOrCompile(KeyFor("hypercube", 6, nil, 0)); !errors.Is(err, ErrRejected) {
		t.Fatalf("want rejection, got %v", err)
	}
	entries, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
	hc, ring := entries[0], entries[1]
	if hc.Gen != "hypercube" || !hc.Rejected || hc.Verified || hc.Programs != 0 {
		t.Fatalf("hypercube entry = %+v", hc)
	}
	if ring.Gen != "ring" || ring.World != "p8-2x4" || !ring.Verified || ring.Rejected {
		t.Fatalf("ring entry = %+v", ring)
	}
	if ring.Programs != 8 || ring.Bytes <= 0 {
		t.Fatalf("ring entry = %+v, want 8 programs with bytes", ring)
	}
	_ = fmt.Sprint(entries)
}
