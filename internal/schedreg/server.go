package schedreg

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Server serves a Registry over HTTP/JSON — the handler behind
// cmd/a2aschedd. Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /v1/stats                    registry counters + admission state
//	GET  /v1/program?gen=&ranks=&nodes=&ppn=&rank=
//	POST /v1/batch                    {"gen","ranks","nodes","ppn","want":[...]}
//
// Requests served from disk never queue; requests that would compile
// pass admission control first — a bounded in-flight-compilation
// semaphore — and are refused with 503 + Retry-After when the daemon is
// saturated, so a thundering herd of cold worlds degrades into polite
// retries instead of a compilation pile-up. Duplicate in-flight keys
// coalesce inside the registry regardless.
type Server struct {
	reg *Registry
	sem chan struct{}
}

// NewServer wraps reg with admission control allowing at most
// maxCompile concurrent compile-path requests (minimum 1).
func NewServer(reg *Registry, maxCompile int) *Server {
	if maxCompile < 1 {
		maxCompile = 1
	}
	return &Server{reg: reg, sem: make(chan struct{}, maxCompile)}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch {
	case req.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case req.URL.Path == "/v1/stats" && req.Method == http.MethodGet:
		s.handleStats(w)
	case req.URL.Path == "/v1/program" && req.Method == http.MethodGet:
		s.handleProgram(w, req)
	case req.URL.Path == "/v1/batch" && req.Method == http.MethodPost:
		s.handleBatch(w, req)
	default:
		http.Error(w, "schedreg: unknown endpoint", http.StatusNotFound)
	}
}

// serverStats is the /v1/stats payload.
type serverStats struct {
	Stats
	CompileSlots   int `json:"compile_slots"`
	CompilesActive int `json:"compiles_active"`
}

func (s *Server) handleStats(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, serverStats{
		Stats:          s.reg.Stats(),
		CompileSlots:   cap(s.sem),
		CompilesActive: len(s.sem),
	})
}

func (s *Server) handleProgram(w http.ResponseWriter, req *http.Request) {
	k, err := keyFromQuery(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rp, err, ok := s.reg.Lookup(k)
	if !ok {
		select {
		case s.sem <- struct{}{}:
			rp, err = s.reg.GetOrCompile(k)
			<-s.sem
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("schedreg: %s: all %d compile slots busy", k, cap(s.sem)), http.StatusServiceUnavailable)
			return
		}
	}
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rp.Encode(w); err != nil {
		// Headers are gone; all we can do is drop the connection mid-body.
		return
	}
}

// batchRequest asks for several ranks of one world in one round trip —
// the shape an SPMD job's ranks-per-node prefetch produces.
type batchRequest struct {
	Gen   string `json:"gen"`
	Ranks int    `json:"ranks"`
	Nodes int    `json:"nodes"`
	PPN   int    `json:"ppn"`
	Want  []int  `json:"want"`
}

// batchResponse aligns with Want: Programs[i] is nil iff Errors[i] is
// non-empty.
type batchResponse struct {
	Programs []json.RawMessage `json:"programs"`
	Errors   []string          `json:"errors"`
}

// batchMax bounds one batch request; a full exascale node's worth of
// ranks fits comfortably.
const batchMax = 1024

func (s *Server) handleBatch(w http.ResponseWriter, req *http.Request) {
	var br batchRequest
	if err := json.NewDecoder(req.Body).Decode(&br); err != nil {
		http.Error(w, fmt.Sprintf("schedreg: decoding batch request: %v", err), http.StatusBadRequest)
		return
	}
	if len(br.Want) == 0 || len(br.Want) > batchMax {
		http.Error(w, fmt.Sprintf("schedreg: batch wants %d ranks, allowed 1..%d", len(br.Want), batchMax), http.StatusBadRequest)
		return
	}
	// One admission slot covers the whole batch: its compilations are for
	// one world and coalesce inside the registry.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("schedreg: batch for %s: all %d compile slots busy", br.Gen, cap(s.sem)), http.StatusServiceUnavailable)
		return
	}
	resp := batchResponse{
		Programs: make([]json.RawMessage, len(br.Want)),
		Errors:   make([]string, len(br.Want)),
	}
	for i, rank := range br.Want {
		k := Key{Gen: br.Gen, Ranks: br.Ranks, Nodes: br.Nodes, PPN: br.PPN, Rank: rank}
		rp, err := s.reg.GetOrCompile(k)
		if err != nil {
			resp.Errors[i] = err.Error()
			continue
		}
		b, err := json.Marshal(rp)
		if err != nil {
			resp.Errors[i] = fmt.Sprintf("schedreg: %s: encoding program: %v", k, err)
			continue
		}
		resp.Programs[i] = b
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps registry errors to HTTP: a rejection is a definitive
// client-cacheable verdict (422), anything else is a server fault.
func statusFor(err error) int {
	if errors.Is(err, ErrRejected) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

func keyFromQuery(req *http.Request) (Key, error) {
	q := req.URL.Query()
	var k Key
	k.Gen = q.Get("gen")
	for _, f := range []struct {
		name string
		dst  *int
		req  bool
	}{
		{"ranks", &k.Ranks, true},
		{"rank", &k.Rank, true},
		{"nodes", &k.Nodes, false},
		{"ppn", &k.PPN, false},
	} {
		v := q.Get(f.name)
		if v == "" {
			if f.req {
				return Key{}, fmt.Errorf("schedreg: missing query parameter %q", f.name)
			}
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Key{}, fmt.Errorf("schedreg: query parameter %s=%q is not an integer", f.name, v)
		}
		*f.dst = n
	}
	return k, k.validate()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}
