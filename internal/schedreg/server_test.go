package schedreg

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

func newTestDaemon(t *testing.T, maxCompile int) (*Registry, *Client) {
	t.Helper()
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, maxCompile))
	t.Cleanup(srv.Close)
	return reg, NewClient(srv.URL)
}

// TestServerFetchRoundTrip: the daemon serves a program byte-identical
// to direct generation, and a repeat fetch is a registry hit.
func TestServerFetchRoundTrip(t *testing.T) {
	c := countSeams(t)
	reg, cl := newTestDaemon(t, 2)
	m := mustMapping(t, 3, 4)

	rp, err := cl.Fetch("torus", 12, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.GenerateRank("torus", 12, 5, m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRP(t, rp), encodeRP(t, want)) {
		t.Fatal("daemon program differs from direct generation")
	}
	if err := sched.VerifyRank(rp); err != nil {
		t.Fatalf("fetched program fails verification: %v", err)
	}
	if _, err := cl.Fetch("torus", 12, m, 5); err != nil {
		t.Fatal(err)
	}
	if got := c.generates.Load(); got != 1 {
		t.Fatalf("generator ran %d times, want 1", got)
	}
	if st := reg.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss", st)
	}
}

// TestServerRejection: a rejected world comes back as ErrRejected with
// key context — the definitive verdict clients negative-cache.
func TestServerRejection(t *testing.T) {
	_, cl := newTestDaemon(t, 2)
	_, err := cl.Fetch("hypercube", 6, nil, 0)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	for _, frag := range []string{"hypercube", "p6-flat"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("rejection %q does not mention %q", err, frag)
		}
	}
}

// TestServerStats: the stats endpoint reflects registry counters.
func TestServerStats(t *testing.T) {
	_, cl := newTestDaemon(t, 2)
	if _, err := cl.Fetch("ring", 8, nil, 1); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Compiles != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 compile", st)
	}
}

// TestServerAdmissionControl: with one compile slot held by a stuck
// compilation, a second cold request is refused with 503 (the client
// maps it to ErrUnavailable) instead of piling up; warm requests keep
// being served from disk.
func TestServerAdmissionControl(t *testing.T) {
	countSeams(t) // restores seams on cleanup
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Warm one world, then wedge the generator.
	if _, err := reg.GetOrCompile(KeyFor("ring", 8, nil, 1)); err != nil {
		t.Fatal(err)
	}
	enter, release := make(chan struct{}, 1), make(chan struct{})
	og := generate
	generate = func(name string, p int, m *topo.Mapping) (*sched.Schedule, error) {
		enter <- struct{}{}
		<-release
		return og(name, p, m)
	}
	srv := httptest.NewServer(NewServer(reg, 1))
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL)

	done := make(chan error, 1)
	go func() {
		_, err := cl.Fetch("pairwise", 8, nil, 0) // occupies the only slot
		done <- err
	}()
	<-enter

	if _, err := cl.Fetch("direct", 8, nil, 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("saturated daemon: want ErrUnavailable, got %v", err)
	}
	if _, err := cl.Fetch("ring", 8, nil, 1); err != nil {
		t.Fatalf("warm fetch refused under saturation: %v", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("wedged compile finished with %v", err)
	}
	generate = og // un-wedge so the next cold compile runs through
	if _, err := cl.Fetch("direct", 8, nil, 0); err != nil {
		t.Fatalf("slot not released: %v", err)
	}
}

// TestServerBatch: one request fetches several ranks; errors are
// per-rank.
func TestServerBatch(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, 2))
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(batchRequest{Gen: "ring", Ranks: 8, Want: []int{0, 3, 8}})
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch answered %s", resp.Status)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Programs) != 3 || len(br.Errors) != 3 {
		t.Fatalf("batch shape: %d programs, %d errors", len(br.Programs), len(br.Errors))
	}
	for i, rank := range []int{0, 3} {
		if br.Errors[i] != "" {
			t.Fatalf("rank %d: %s", rank, br.Errors[i])
		}
		rp, err := sched.DecodeRank(bytes.NewReader(br.Programs[i]))
		if err != nil {
			t.Fatal(err)
		}
		if rp.Rank != rank {
			t.Fatalf("slot %d holds rank %d", i, rp.Rank)
		}
	}
	if br.Errors[2] == "" || !strings.Contains(br.Errors[2], "rank out of range") {
		t.Fatalf("rank 8 error = %q, want out-of-range", br.Errors[2])
	}
}

// TestServerBadRequests: malformed queries are 400s, unknown paths 404.
func TestServerBadRequests(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, 1))
	t.Cleanup(srv.Close)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/program?gen=ring&rank=0", http.StatusBadRequest},                 // missing ranks
		{"/v1/program?gen=ring&ranks=zoo&rank=0", http.StatusBadRequest},       // non-integer
		{"/v1/program?gen=..%2Fup&ranks=8&rank=0", http.StatusBadRequest},      // path-unsafe gen
		{"/v1/program?gen=ring&ranks=8&rank=0&nodes=2", http.StatusBadRequest}, // nodes without ppn
		{"/v1/nope", http.StatusNotFound},
	} {
		resp, err := http.Get(srv.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s answered %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}
}
