package sim

import (
	"fmt"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/topo"
)

// ClusterConfig describes one simulated run.
type ClusterConfig struct {
	// Model is the machine cost model (a netmodel preset or custom).
	Model netmodel.Params
	// Nodes and PPN shape the job: Nodes*PPN ranks, block-mapped.
	Nodes int
	PPN   int
	// Seed fixes the noise stream; different seeds give the paper's
	// "3 runs" variability.
	Seed int64
	// OverheadScale scales software overheads (system-MPI vendor profile);
	// zero means 1.0.
	OverheadScale float64
	// Fabric, when non-empty, names a topo.Fabric kind ("ring", "torus",
	// "hypercube") and enables the flow-level contention model: every
	// inter-node message is booked onto the per-link FIFO queues of that
	// fabric over the job's nodes. Requires the model's FabricLinkBW /
	// FabricQueueBytes; empty runs the analytic model alone.
	Fabric string
	// Fail, when non-nil, injects a single rank failure mid-run.
	Fail *FailSpec

	// debugReserve, when non-nil, observes every resource reservation
	// (tests and calibration diagnostics; per-run so parallel tests don't
	// race on a shared hook).
	debugReserve reserveHook
}

// Stats summarizes a finished simulation.
type Stats struct {
	// Events is the number of discrete events processed.
	Events uint64
	// Messages is the number of point-to-point messages simulated.
	Messages uint64
	// VirtualSeconds is the final global virtual time.
	VirtualSeconds float64
	// LinkBlockedSeconds and LinkQueuedSeconds sum backpressure and FIFO
	// waits over all fabric links (zero without ClusterConfig.Fabric).
	LinkBlockedSeconds float64
	LinkQueuedSeconds  float64
	// MaxLinkQueueBytes is the deepest any fabric link's queue got.
	MaxLinkQueueBytes int
}

// FailSpec describes an injected rank failure: world rank Rank dies
// immediately before its first point-to-point operation tagged AtTag or
// higher, and every operation from then on returns ErrRankFailed. The
// schedule executor tags round r's traffic sched.TagBase+r, so AtTag =
// sched.TagBase+r kills the rank as it enters round r; AtTag <= 0 kills
// it at its very first operation. The failed rank's proc decides what
// its death means: returning nil models a silently vanished rank (the
// survivors then either hang — the deadlock detector names the waiters —
// or complete, if they run a repaired schedule that avoids it).
type FailSpec struct {
	Rank  int
	AtTag int
}

// ErrRankFailed is returned (wrapped, with rank and tag context) by every
// communication operation a failed rank attempts.
var ErrRankFailed = fmt.Errorf("sim: rank failed")

// failState tracks an injected failure; the event loop is single-threaded
// so no locking is needed.
type failState struct {
	rank  int // world rank
	atTag int
	dead  bool
}

// cluster is the shared state of one simulated job.
type cluster struct {
	e       *Engine
	net     *Network
	mapping *topo.Mapping
	procs   []*Proc
	nextCtx int64
	splits  map[splitKey]*splitGather
	fail    *failState
}

// RunCluster simulates an SPMD program: body runs once per rank against
// that rank's world communicator, under virtual time. It returns simulation
// statistics and the joined error of failing ranks (or a deadlock
// diagnosis).
func RunCluster(cfg ClusterConfig, body func(c comm.Comm) error) (Stats, error) {
	return RunClusterDebug(cfg, body, nil)
}

// RunClusterDebug is RunCluster with a post-run hook receiving the network
// (NIC port report, flow-level report) and final virtual time (diagnostics
// for model calibration). The hook runs before the flow report is folded
// into Stats, so it sees the links' live queues.
func RunClusterDebug(cfg ClusterConfig, body func(c comm.Comm) error, report func(net *Network, final float64)) (Stats, error) {
	if cfg.PPN <= 0 || cfg.Nodes <= 0 {
		return Stats{}, fmt.Errorf("sim: invalid cluster shape %d nodes x %d ppn", cfg.Nodes, cfg.PPN)
	}
	mapping, err := topo.NewMapping(cfg.Model.Node, cfg.Nodes, cfg.PPN)
	if err != nil {
		return Stats{}, err
	}
	scale := cfg.OverheadScale
	if scale == 0 {
		scale = 1.0
	}
	e := NewEngine()
	net, err := NewNetwork(e, cfg.Model, mapping, cfg.Seed, scale, cfg.Fabric)
	if err != nil {
		return Stats{}, err
	}
	net.debugReserve = cfg.debugReserve
	cl := &cluster{
		e:       e,
		net:     net,
		mapping: mapping,
		splits:  make(map[splitKey]*splitGather),
		nextCtx: 1,
	}
	n := mapping.Size()
	if cfg.Fail != nil {
		if cfg.Fail.Rank < 0 || cfg.Fail.Rank >= n {
			return Stats{}, fmt.Errorf("sim: fail rank %d out of range 0..%d", cfg.Fail.Rank, n-1)
		}
		cl.fail = &failState{rank: cfg.Fail.Rank, atTag: cfg.Fail.AtTag}
	}
	worldRanks := make([]int, n)
	for i := range worldRanks {
		worldRanks[i] = i
	}
	cl.procs = make([]*Proc, n)
	worldID := cl.nextCtx
	cl.nextCtx++
	for r := 0; r < n; r++ {
		rank := r
		c := &SimComm{cl: cl, id: worldID, rank: rank, ranks: worldRanks, isWorld: true}
		cl.procs[rank] = e.Spawn(rank, func(p *Proc) error {
			c.p = p
			return body(c)
		})
		c.p = cl.procs[rank] // available immediately for Split result construction
	}
	runErr := e.Run()
	if report != nil {
		report(net, e.Now())
	}
	st := Stats{Events: e.EventsProcessed(), Messages: net.MessagesSent(), VirtualSeconds: e.Now()}
	if fr := net.FlowReport(); fr != nil {
		st.LinkBlockedSeconds = fr.TotalBlockedSeconds
		st.LinkQueuedSeconds = fr.TotalQueuedSeconds
		st.MaxLinkQueueBytes = fr.MaxQueueBytes
	}
	return st, runErr
}
