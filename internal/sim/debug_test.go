package sim

import (
	"fmt"
	"os"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
)

// TestDebugPortGaps is a diagnostic, not a regression test. Run with
// -run TestDebugPortGaps -v.
func TestDebugPortGaps(t *testing.T) {
	t.Parallel()
	if os.Getenv("A2A_DEBUG_PORTS") == "" {
		t.Skip("diagnostic; set A2A_DEBUG_PORTS=1")
	}
	m := netmodel.Dane()
	type book struct{ ready, start, dur float64 }
	perRes := make(map[*resource][]book)
	cfg := ClusterConfig{Model: m, Nodes: 8, PPN: 28, Seed: 1}
	// The hook is per-run state (carried on the config, not a package
	// global), so this test can run alongside the rest of the suite.
	cfg.debugReserve = func(r *resource, ready, start, dur float64) {
		perRes[r] = append(perRes[r], book{ready, start, dur})
	}
	const block = 16384
	_, err := RunClusterDebug(cfg, func(c comm.Comm) error {
		n, r := c.Size(), c.Rank()
		send := comm.Virtual(n * block)
		recv := comm.Virtual(n * block)
		if err := c.Barrier(); err != nil {
			return err
		}
		var reqs []comm.Request
		for i := 1; i < n; i++ {
			sp := (r + i) % n
			rp := (r - i + n) % n
			rq, err := c.Irecv(recv.Slice(rp*block, block), rp, 1)
			if err != nil {
				return err
			}
			sq, err := c.Isend(send.Slice(sp*block, block), sp, 1)
			if err != nil {
				return err
			}
			reqs = append(reqs, rq, sq)
			if r == 0 && i == 29 {
				fmt.Printf("rank0 clock at post 29 (inter-node): %.6f\n", c.Now())
			}
		}
		return c.WaitAll(reqs)
	}, func(net *Network, final float64) {
		out0 := perRes[&net.nicOut[0]]
		var data []book
		minReady := 1e9
		for _, b := range out0 {
			if b.dur > 1e-6 {
				data = append(data, b)
				if b.ready < minReady {
					minReady = b.ready
				}
			}
		}
		fmt.Printf("nicOut[0]: %d data bookings, first-exec ready=%.6f, min ready=%.6f, makespan=%.6f\n",
			len(data), data[0].ready, minReady, final)
	})
	if err != nil {
		t.Fatal(err)
	}
}
