// Package sim is a deterministic discrete-event simulator used to model the
// paper's clusters (Dane, Amber, Tuolomne) at full scale — up to 32 nodes x
// 112 ranks — on a single development machine. Each simulated rank is a
// goroutine ("process") with a virtual clock; processes run one at a time
// under a central event loop, so all shared simulator state is mutated
// race-free and every run is reproducible given a seed.
//
// Causal ordering invariant: before touching any shared resource (NIC
// ports, memory buses, mailboxes), a process synchronizes with the global
// virtual clock (Proc.Sync), guaranteeing resource reservations happen in
// nondecreasing virtual time. This is what makes the FIFO resource model in
// network.go a valid conservative simulation.
package sim

import (
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
)

// event is a scheduled callback. seq breaks time ties deterministically in
// scheduling order.
type event struct {
	t   float64
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (t, seq). It is hand-rolled
// rather than container/heap to avoid interface dispatch on the simulator's
// hottest path.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release fn for GC
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && less((*h)[l], (*h)[small]) {
			small = l
		}
		if r < n && less((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Engine owns the event queue and the set of simulated processes.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	procs  []*Proc
	alive  int
	failed error
	nEvent uint64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the global virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsProcessed returns the number of events executed so far (a cheap
// proxy for simulation work, used in tests and stats).
func (e *Engine) EventsProcessed() uint64 { return e.nEvent }

// At schedules fn at virtual time t (clamped to now: the past cannot be
// scheduled).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{t: t, seq: e.seq, fn: fn})
}

// errStopped marks a process unwound because the engine shut down while it
// was parked.
var errStopped = errors.New("sim: process stopped while parked")

// Proc is a simulated sequential process with a private virtual clock that
// only moves forward. Exactly one Proc executes at any instant: processes
// are coroutines (iter.Pull) resumed one at a time by the event loop, so
// handoffs cost a coroutine switch, not a goroutine wakeup — the
// difference between minutes and hours when simulating tens of millions of
// messages.
type Proc struct {
	// ID is the process index (the world rank, for rank processes).
	ID int

	e          *Engine
	now        float64
	busy       float64 // CPU-busy virtual seconds (Advance charges only)
	overlap    []*simToken
	next       func() (struct{}, bool)
	stop       func()
	yield      func(struct{}) bool
	done       bool
	err        error
	waitReason string
}

// Spawn registers a process whose body starts at virtual time 0. Must be
// called before Run.
func (e *Engine) Spawn(id int, body func(p *Proc) error) *Proc {
	p := &Proc{ID: id, e: e}
	e.procs = append(e.procs, p)
	e.alive++
	seq := func(yield func(struct{}) bool) {
		p.yield = yield
		func() {
			defer func() {
				if r := recover(); r != nil && !errors.Is(asError(r), errStopped) {
					p.err = fmt.Errorf("sim: proc %d panicked: %v", p.ID, r)
				}
			}()
			p.err = body(p)
		}()
		p.done = true
		e.alive--
		if p.err != nil && e.failed == nil {
			e.failed = fmt.Errorf("sim: proc %d failed at t=%.9fs: %w", p.ID, e.now, p.err)
		}
	}
	p.next, p.stop = iter.Pull(iter.Seq[struct{}](seq))
	e.At(0, func() { e.transfer(p) })
	return p
}

func asError(r any) error {
	if err, ok := r.(error); ok {
		return err
	}
	return fmt.Errorf("%v", r)
}

// transfer hands control to p until it parks or finishes.
func (e *Engine) transfer(p *Proc) {
	if p.done {
		return
	}
	p.next()
}

// Run executes events until none remain or a process fails. It returns the
// first process error, or a deadlock diagnosis if processes remain parked
// with an empty event queue. Parked processes are unwound on return so
// their coroutines release resources.
func (e *Engine) Run() error {
	defer func() {
		for _, p := range e.procs {
			if !p.done {
				p.stop()
			}
		}
	}()
	for len(e.events) > 0 {
		ev := e.events.pop()
		e.now = ev.t
		e.nEvent++
		ev.fn()
		if e.failed != nil {
			return e.failed
		}
	}
	if e.alive > 0 {
		return e.deadlockError()
	}
	var errs []error
	for _, p := range e.procs {
		if p.err != nil {
			errs = append(errs, fmt.Errorf("proc %d: %w", p.ID, p.err))
		}
	}
	return errors.Join(errs...)
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, p := range e.procs {
		if !p.done {
			stuck = append(stuck, fmt.Sprintf("proc %d (%s, t=%.9f)", p.ID, p.waitReason, p.now))
		}
	}
	sort.Strings(stuck)
	const show = 8
	msg := stuck
	if len(msg) > show {
		msg = append(append([]string{}, msg[:show]...), fmt.Sprintf("... and %d more", len(stuck)-show))
	}
	return fmt.Errorf("sim: deadlock at t=%.9fs: %d processes parked: %s",
		e.now, len(stuck), strings.Join(msg, "; "))
}

// Fail aborts the simulation with err at the next loop iteration.
func (e *Engine) Fail(err error) { e.failed = err }

// Now returns the process's local virtual time in seconds.
func (p *Proc) Now() float64 { return p.now }

// Advance moves the local clock forward by dt seconds (local compute or
// overhead; touches no shared state, so no synchronization is needed).
// Advanced time is CPU-busy time: it accumulates in Busy, distinguishing
// it from the waiting time a parked process's clock gains through WakeAt.
// The busy/waiting split is what the overlap model charges against — only
// waiting can hide behind application compute.
func (p *Proc) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: Advance(%g): negative duration", dt))
	}
	p.now += dt
	p.busy += dt
}

// Busy returns the cumulative CPU-busy virtual seconds charged to this
// process via Advance (overheads, copies, compute). Elapsed minus busy
// over an interval is the time the process spent parked — waiting on
// message completions, barriers, or global-time synchronization.
func (p *Proc) Busy() float64 { return p.busy }

// park suspends the process until some event resumes it via transfer.
func (p *Proc) park(reason string) {
	p.waitReason = reason
	if !p.yield(struct{}{}) {
		// The engine called stop() during shutdown: unwind this process.
		panic(errStopped)
	}
	p.waitReason = ""
}

// WakeAt schedules p to resume at virtual time t, advancing its clock to at
// least t. The caller must ensure p is (or will be) parked; waking an
// unparked process is a programming error caught by the engine's
// single-runner design (transfer blocks until the previous park).
func (e *Engine) WakeAt(p *Proc, t float64) {
	e.At(t, func() {
		if p.now < t {
			p.now = t
		}
		e.transfer(p)
	})
}

// Sync parks until global virtual time catches up with the local clock, so
// that subsequent shared-state operations occur in global time order.
//
// Sync is the simulator's causal-ordering invariant: every process must
// call it before touching any shared resource (NIC ports, memory buses,
// mailboxes), which guarantees that resource reservations happen in
// nondecreasing virtual time across the whole simulation. That monotone
// order is what makes the FIFO resource model in network.go a valid
// conservative discrete-event simulation — a reservation can never be
// invalidated by a "late" event from a process whose clock was behind.
// Omitting Sync before a reservation is the one way to corrupt a
// simulation without a data race, so every shared-state path in
// network.go starts with it.
//
// The fast path — no pending event earlier than the local clock — costs
// nothing; any process that would be woken later can only act at or after
// its wake time, so no earlier reservation can appear.
func (p *Proc) Sync() {
	if len(p.e.events) == 0 || p.e.events[0].t >= p.now {
		return
	}
	p.e.WakeAt(p, p.now)
	p.park("sync")
}

// SleepUntil parks until virtual time t (no-op if t is in the local past).
func (p *Proc) SleepUntil(t float64) {
	if t <= p.now {
		return
	}
	p.e.WakeAt(p, t)
	p.park("sleep")
}

// Park suspends the process with a diagnostic reason until another
// process's event wakes it via Engine.WakeAt.
func (p *Proc) Park(reason string) { p.park(reason) }
