package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventHeapOrdering(t *testing.T) {
	t.Parallel()
	// Property: events pop in (time, seq) order for arbitrary inserts.
	f := func(raw []uint16) bool {
		var h eventHeap
		for i, r := range raw {
			h.push(event{t: float64(r % 100), seq: uint64(i)})
		}
		var last event
		first := true
		for len(h) > 0 {
			ev := h.pop()
			if !first && less(ev, last) {
				return false
			}
			last, first = ev, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineRunsEventsInOrder(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var got []float64
	times := []float64{5, 1, 3, 2, 4, 1} // duplicate time keeps seq order
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), times...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if e.EventsProcessed() != uint64(len(times)) {
		t.Errorf("EventsProcessed = %d", e.EventsProcessed())
	}
}

func TestProcAdvanceAndSleep(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var finalNow float64
	e.Spawn(0, func(p *Proc) error {
		p.Advance(1.5)
		p.SleepUntil(3.0)
		p.SleepUntil(2.0) // past: no-op
		p.Sync()
		finalNow = p.Now()
		return nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finalNow != 3.0 {
		t.Errorf("final proc time = %g, want 3.0", finalNow)
	}
}

func TestProcAdvanceNegativePanics(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	e.Spawn(0, func(p *Proc) error {
		p.Advance(-1)
		return nil
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("negative Advance not caught: %v", err)
	}
}

func TestTwoProcsInterleaveByVirtualTime(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var order []int
	for i := 0; i < 2; i++ {
		id := i
		e.Spawn(id, func(p *Proc) error {
			// Proc 0 acts at t=0, 2, 4...; proc 1 at t=1, 3, 5...
			p.Advance(float64(id))
			for k := 0; k < 3; k++ {
				p.Sync()
				order = append(order, id)
				p.SleepUntil(p.Now() + 2)
			}
			return nil
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	e.Spawn(0, func(p *Proc) error {
		p.Park("waiting for godot")
		return nil
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "godot") {
		t.Fatalf("deadlock diagnosis missing: %v", err)
	}
}

func TestProcErrorStopsRun(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	boom := errors.New("boom")
	e.Spawn(0, func(p *Proc) error { return boom })
	e.Spawn(1, func(p *Proc) error {
		p.SleepUntil(100)
		return nil
	})
	err := e.Run()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("proc error not propagated: %v", err)
	}
}

func TestEngineFail(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	bad := errors.New("invariant broken")
	e.At(1, func() { e.Fail(bad) })
	e.At(2, func() { t.Error("event after Fail executed") })
	if err := e.Run(); !errors.Is(err, bad) {
		t.Fatalf("Fail not propagated: %v", err)
	}
}

func TestWakeAtAdvancesClock(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var woken float64
	p := e.Spawn(0, func(p *Proc) error {
		p.Park("test wake")
		woken = p.Now()
		return nil
	})
	e.At(0.5, func() { e.WakeAt(p, 7.0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 7.0 {
		t.Errorf("woken at %g, want 7.0", woken)
	}
}

func TestAtClampsPast(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var times []float64
	e.At(5, func() {
		e.At(1, func() { times = append(times, e.Now()) }) // past: clamped to 5
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 1 || times[0] != 5 {
		t.Errorf("clamped event times = %v", times)
	}
}

// TestManyProcsDeterministic: a randomized workload must replay exactly.
func TestManyProcsDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed int64) []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		finals := make([]float64, 8)
		delays := make([][]float64, 8)
		for i := range delays {
			delays[i] = make([]float64, 50)
			for k := range delays[i] {
				delays[i][k] = rng.Float64() * 1e-3
			}
		}
		for i := 0; i < 8; i++ {
			id := i
			e.Spawn(id, func(p *Proc) error {
				for _, d := range delays[id] {
					p.Advance(d)
					p.Sync()
				}
				finals[id] = p.Now()
				return nil
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return finals
	}
	a, b := run(1), run(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic replay: %v vs %v", a, b)
		}
	}
	if fmt.Sprint(run(1)) == fmt.Sprint(run(2)) {
		t.Log("different seeds coincided (allowed, but suspicious)")
	}
}
