package sim

import (
	"fmt"

	"alltoallx/internal/topo"
)

// This file is the flow-level contention model: per-link FIFO queues for
// the inter-node fabric links of a direct-connect topology
// (topo.Fabric), layered *beneath* the analytic per-message costing.
//
// The analytic model charges inter-node messages at the two NIC ports
// only; with a fabric enabled (ClusterConfig.Fabric), every inter-node
// message is additionally booked onto each fabric link its route
// traverses. Links are virtual cut-through: a message's head passes a
// link the moment the link starts serving it, so an uncontended flow
// pays exactly the analytic cost (the NIC ports remain the serialization
// points) and the flow level is a strict refinement — it only ever adds
// time, and only through two contention terms:
//
//   - queued time: the link is busy serializing earlier flows
//     (FIFO time-division — over a round, k overlapping flows each see
//     ~1/k of the link's bandwidth);
//   - blocked time: the link's queue already holds more than
//     FabricQueueBytes of undrained traffic, so admission (and with it
//     the whole remaining route) stalls until the queue drains below its
//     depth — backpressure.
//
// Every booking is conserved: bytes enqueued on a link equal bytes
// drained once the run's FlowReport is taken, and per-round (per-tag)
// congestion sums equal the per-link sums — the invariants the
// conservation property tests in flow_test.go fuzz.

// linkBooking is one message's occupancy of a link: its serialization
// interval end and its size, kept until drained for queue-depth
// accounting.
type linkBooking struct {
	finish float64
	bytes  int
}

// LinkStats are one directed link's cumulative flow statistics.
type LinkStats struct {
	// Messages is the number of flows booked onto the link.
	Messages int
	// BytesEnqueued and BytesDrained count payload bytes entering and
	// leaving the link's queue; they are equal after FlowReport.
	BytesEnqueued, BytesDrained int64
	// BusySeconds is the link's total serialization time.
	BusySeconds float64
	// BlockedSeconds is time flows spent stalled upstream waiting for
	// queue space (backpressure).
	BlockedSeconds float64
	// QueuedSeconds is time flows spent waiting for the link to finish
	// serving earlier flows (FIFO sharing).
	QueuedSeconds float64
	// MaxQueueBytes is the high-water mark of undrained bytes.
	MaxQueueBytes int
}

// flowLink is one directed fabric link: a FIFO-served resource with a
// finite queue. All methods run under the engine's one-at-a-time
// discipline in nondecreasing virtual time (the same conservative-DES
// invariant the other resources rely on).
type flowLink struct {
	from, to int
	rate     float64
	depth    int

	nextFree    float64
	queue       []linkBooking
	queuedBytes int
	stats       LinkStats
}

// drain retires bookings whose serialization ended by time t.
func (l *flowLink) drain(t float64) {
	for len(l.queue) > 0 && l.queue[0].finish <= t {
		b := l.queue[0]
		l.queue = l.queue[1:]
		l.queuedBytes -= b.bytes
		l.stats.BytesDrained += int64(b.bytes)
	}
}

// admit books a message of the given size onto the link at time ready
// and returns when its head may proceed to the next stage, plus the
// backpressure (blocked) and FIFO (queued) waits it paid. The link stays
// occupied for the full serialization interval — that occupancy, not the
// head's passage, is what later flows queue behind.
func (l *flowLink) admit(ready float64, bytes int) (start, blocked, queued float64) {
	l.drain(ready)
	admission := ready
	for l.queuedBytes+bytes > l.depth && len(l.queue) > 0 {
		b := l.queue[0]
		l.queue = l.queue[1:]
		l.queuedBytes -= b.bytes
		l.stats.BytesDrained += int64(b.bytes)
		if b.finish > admission {
			admission = b.finish
		}
	}
	blocked = admission - ready
	start = admission
	if l.nextFree > start {
		start = l.nextFree
	}
	queued = start - admission
	var dur float64
	if bytes > 0 {
		dur = float64(bytes) / l.rate
	}
	l.nextFree = start + dur
	l.queue = append(l.queue, linkBooking{finish: start + dur, bytes: bytes})
	l.queuedBytes += bytes
	if l.queuedBytes > l.stats.MaxQueueBytes {
		l.stats.MaxQueueBytes = l.queuedBytes
	}
	l.stats.Messages++
	l.stats.BytesEnqueued += int64(bytes)
	l.stats.BusySeconds += dur
	l.stats.BlockedSeconds += blocked
	l.stats.QueuedSeconds += queued
	return start, blocked, queued
}

// finalize retires every outstanding booking (taken at report time: the
// run is over, the tails have left the wire).
func (l *flowLink) finalize() {
	for len(l.queue) > 0 {
		b := l.queue[0]
		l.queue = l.queue[1:]
		l.queuedBytes -= b.bytes
		l.stats.BytesDrained += int64(b.bytes)
	}
}

// RoundCongestion aggregates link congestion per message tag. The
// schedule executor tags round ri's messages sched.TagBase+ri, so for
// schedule-driven traffic this is the per-round congestion breakdown.
type RoundCongestion struct {
	// Hops counts link bookings (a message crossing three links books
	// three hops).
	Hops int
	// LinkBytes is payload bytes times links traversed.
	LinkBytes int64
	// BlockedSeconds and QueuedSeconds sum the backpressure and FIFO
	// waits of this tag's bookings.
	BlockedSeconds float64
	QueuedSeconds  float64
}

// LinkReport is one directed link's identity and statistics.
type LinkReport struct {
	From, To int
	LinkStats
}

// FlowReport is the flow level's end-of-run observability: per-link
// statistics in deterministic (from, to) order, per-tag congestion, and
// the totals the Stats counters surface.
type FlowReport struct {
	Fabric string
	Nodes  int
	Links  []LinkReport
	// Rounds is keyed by message tag (sched rounds use sched.TagBase+ri).
	Rounds map[int]RoundCongestion
	// TotalBlockedSeconds and TotalQueuedSeconds sum the per-link (and,
	// identically, per-round) congestion terms.
	TotalBlockedSeconds float64
	TotalQueuedSeconds  float64
	// MaxQueueBytes is the deepest any link's queue got.
	MaxQueueBytes int
}

// flowState is the Network's fabric extension.
type flowState struct {
	fabric *topo.Fabric
	links  []flowLink
	routes [][][]int // [srcNode][dstNode] -> link ids, filled lazily
	rounds map[int]*RoundCongestion
}

// newFlowState builds the per-link state for a fabric kind over the
// mapping's nodes, validating that the model carries link parameters.
func newFlowState(kind string, nodes int, linkBW float64, queueBytes int) (*flowState, error) {
	if linkBW <= 0 {
		return nil, fmt.Errorf("sim: fabric %q requested but the machine model has no FabricLinkBW (flow-level contention is disabled for it)", kind)
	}
	f, err := topo.NewFabric(kind, nodes)
	if err != nil {
		return nil, err
	}
	fs := &flowState{
		fabric: f,
		links:  make([]flowLink, f.Links()),
		routes: make([][][]int, nodes),
		rounds: make(map[int]*RoundCongestion),
	}
	for id := range fs.links {
		from, to := f.Edge(id)
		fs.links[id] = flowLink{from: from, to: to, rate: linkBW, depth: queueBytes}
	}
	for i := range fs.routes {
		fs.routes[i] = make([][]int, nodes)
	}
	return fs, nil
}

// routeLinks returns (and caches) the link ids from src to dst node.
func (fs *flowState) routeLinks(src, dst int) []int {
	if r := fs.routes[src][dst]; r != nil {
		return r
	}
	r := fs.fabric.RouteLinks(src, dst)
	fs.routes[src][dst] = r
	return r
}

// note attributes one link booking's congestion to a message tag.
func (fs *flowState) note(tag, bytes int, blocked, queued float64) {
	rc := fs.rounds[tag]
	if rc == nil {
		rc = &RoundCongestion{}
		fs.rounds[tag] = rc
	}
	rc.Hops++
	rc.LinkBytes += int64(bytes)
	rc.BlockedSeconds += blocked
	rc.QueuedSeconds += queued
}

// FlowReport finalizes the links (draining outstanding bookings) and
// returns the flow-level report, or nil when no fabric is configured.
func (n *Network) FlowReport() *FlowReport {
	fs := n.flow
	if fs == nil {
		return nil
	}
	rep := &FlowReport{
		Fabric: fs.fabric.Kind(),
		Nodes:  fs.fabric.Nodes(),
		Rounds: make(map[int]RoundCongestion, len(fs.rounds)),
	}
	for _, id := range fs.fabric.SortedLinks() {
		l := &fs.links[id]
		l.finalize()
		rep.Links = append(rep.Links, LinkReport{From: l.from, To: l.to, LinkStats: l.stats})
		rep.TotalBlockedSeconds += l.stats.BlockedSeconds
		rep.TotalQueuedSeconds += l.stats.QueuedSeconds
		if l.stats.MaxQueueBytes > rep.MaxQueueBytes {
			rep.MaxQueueBytes = l.stats.MaxQueueBytes
		}
	}
	for tag, rc := range fs.rounds {
		rep.Rounds[tag] = *rc
	}
	return rep
}
