package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/sched"
	"alltoallx/internal/topo"
)

// TestFlowSingleFlowMatchesAnalytic is the equivalence oracle: with the
// flow level enabled but only one sender streaming, the fabric links are
// uncontended cut-through stages and the run must reproduce the analytic
// cost exactly (1e-9 relative). Randomized over the three machines, all
// fabric kinds, message sizes spanning the eager/rendezvous crossover,
// node distances, and intra-node traffic. This also pins the
// no-extra-randomness property: an uncontended link admission schedules
// no events and draws no noise, so the two runs see bit-identical
// noise streams.
func TestFlowSingleFlowMatchesAnalytic(t *testing.T) {
	t.Parallel()
	machines := []netmodel.Params{netmodel.Dane(), netmodel.Amber(), netmodel.Tuolomne()}
	rng := rand.New(rand.NewSource(42))
	const nodes = 8
	for _, m := range machines {
		for _, fabric := range topo.FabricKinds() {
			for trial := 0; trial < 8; trial++ {
				ppn := 1 + rng.Intn(4)
				var bytes int
				switch trial % 4 {
				case 0: // eager
					bytes = 1 + rng.Intn(m.EagerMax)
				case 1: // rendezvous
					bytes = m.EagerMax + 1 + rng.Intn(1<<16)
				case 2: // crossover boundary
					bytes = m.EagerMax
				case 3: // just past the boundary
					bytes = m.EagerMax + 1
				}
				srcNode := rng.Intn(nodes)
				dstNode := (srcNode + 1 + rng.Intn(nodes-1)) % nodes
				if trial == 5 && ppn > 1 {
					dstNode = srcNode // intra-node: the fabric is not touched
				}
				src := srcNode*ppn + rng.Intn(ppn)
				dst := dstNode*ppn + rng.Intn(ppn)
				if src == dst {
					dst = srcNode*ppn + (dst-srcNode*ppn+1)%ppn
				}
				msgs := 1 + rng.Intn(3)
				seed := rng.Int63()
				run := func(fab string) Stats {
					t.Helper()
					cfg := ClusterConfig{Model: m, Nodes: nodes, PPN: ppn, Seed: seed, Fabric: fab}
					st, err := RunCluster(cfg, func(c comm.Comm) error {
						b := comm.Virtual(bytes)
						for k := 0; k < msgs; k++ {
							switch c.Rank() {
							case src:
								if err := c.Send(b, dst, 10+k); err != nil {
									return err
								}
							case dst:
								if err := c.Recv(b, src, 10+k); err != nil {
									return err
								}
							}
						}
						return nil
					})
					if err != nil {
						t.Fatalf("%s/%s trial %d: %v", m.Name, fab, trial, err)
					}
					return st
				}
				base := run("")
				flow := run(fabric)
				rel := math.Abs(flow.VirtualSeconds-base.VirtualSeconds) / base.VirtualSeconds
				if rel > 1e-9 {
					t.Errorf("%s/%s trial %d (%dB x%d, node %d->%d): analytic %.12g s, flow %.12g s (rel %.3g)",
						m.Name, fabric, trial, bytes, msgs, srcNode, dstNode,
						base.VirtualSeconds, flow.VirtualSeconds, rel)
				}
				if flow.LinkBlockedSeconds != 0 || flow.LinkQueuedSeconds != 0 {
					t.Errorf("%s/%s trial %d: single flow saw contention (blocked %g, queued %g)",
						m.Name, fabric, trial, flow.LinkBlockedSeconds, flow.LinkQueuedSeconds)
				}
				if flow.Messages != base.Messages {
					t.Errorf("%s/%s trial %d: message counts diverge (%d vs %d)",
						m.Name, fabric, trial, flow.Messages, base.Messages)
				}
			}
		}
	}
}

// TestFlowContentionAddsTime pins the contention mechanism itself: two
// flows to *different* destination nodes whose ring routes share the link
// 1->2 (0->2 goes 0->1->2, 1->3 goes 1->2->3) must pay queueing there and
// finish measurably later than the analytic model, which sees two
// independent NIC pairs and no shared resource at all.
func TestFlowContentionAddsTime(t *testing.T) {
	t.Parallel()
	m := netmodel.Dane()
	const (
		block = 1 << 18
		msgs  = 4
	)
	// All messages are posted up front (nonblocking) so each sender
	// streams through its NIC back-to-back — the two flows hit the shared
	// link at twice its drain rate instead of self-throttling.
	body := func(c comm.Comm) error {
		b := comm.Virtual(block)
		var reqs []comm.Request
		for k := 0; k < msgs; k++ {
			var req comm.Request
			var err error
			switch c.Rank() {
			case 0:
				req, err = c.Isend(b, 2, 20+k)
			case 1:
				req, err = c.Isend(b, 3, 20+k)
			case 2:
				req, err = c.Irecv(b, 0, 20+k)
			case 3:
				req, err = c.Irecv(b, 1, 20+k)
			}
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		return c.WaitAll(reqs)
	}
	cfg := ClusterConfig{Model: m, Nodes: 4, PPN: 1, Seed: 5}
	base, err := RunCluster(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fabric = "ring"
	flow, err := RunCluster(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	if flow.LinkQueuedSeconds+flow.LinkBlockedSeconds <= 0 {
		t.Errorf("converging flows saw no contention (queued %g, blocked %g)",
			flow.LinkQueuedSeconds, flow.LinkBlockedSeconds)
	}
	// Both flows squeeze through one link at FabricLinkBW while the NICs
	// could inject at 2x that aggregate; the makespan must grow well past
	// noise (the refinement also forbids it shrinking).
	if flow.VirtualSeconds < base.VirtualSeconds*1.2 {
		t.Errorf("shared-link contention did not slow the run: analytic %.6g s, flow %.6g s",
			base.VirtualSeconds, flow.VirtualSeconds)
	}
}

// TestFlowConservationFuzz fuzzes verified schedules through the flow
// level and asserts the conservation invariants: every link drains every
// byte it enqueued, all queues are empty by the end of the run, and the
// per-round (per-tag) congestion attribution sums to the per-link totals
// the Stats counters report. Runs under -race in CI.
func TestFlowConservationFuzz(t *testing.T) {
	t.Parallel()
	type trial struct {
		gen        string
		fabric     string
		nodes, ppn int
		block      int
		queue      int // FabricQueueBytes override; 0 keeps the preset
	}
	rng := rand.New(rand.NewSource(99))
	gens := []string{"direct", "pairwise", "bruck", "ring", "torus", "hypercube"}
	trials := []trial{
		// Deliberate heavy cases: tiny queues + bulk blocks force
		// backpressure; direct floods every link at once.
		{gen: "direct", fabric: "ring", nodes: 8, ppn: 2, block: 1 << 16, queue: 8192},
		{gen: "pairwise", fabric: "torus", nodes: 8, ppn: 2, block: 1 << 15, queue: 4096},
		{gen: "bruck", fabric: "hypercube", nodes: 8, ppn: 1, block: 1 << 14, queue: 4096},
	}
	for i := 0; i < 9; i++ {
		trials = append(trials, trial{
			gen:    gens[rng.Intn(len(gens))],
			fabric: topo.FabricKinds()[rng.Intn(3)],
			nodes:  []int{2, 4, 8}[rng.Intn(3)],
			ppn:    []int{1, 2, 4}[rng.Intn(3)],
			block:  1 << (6 + rng.Intn(10)),
			queue:  []int{0, 16384}[rng.Intn(2)],
		})
	}
	var sawQueued, sawBlocked bool
	for ti, tr := range trials {
		m := netmodel.Dane()
		if tr.queue > 0 {
			m.FabricQueueBytes = tr.queue
		}
		p := tr.nodes * tr.ppn
		mapping, err := topo.NewMapping(m.Node, tr.nodes, tr.ppn)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.Generate(tr.gen, p, mapping)
		if err != nil {
			t.Fatalf("trial %d: %v", ti, err)
		}
		if err := sched.Verify(s); err != nil {
			t.Fatalf("trial %d: generated schedule fails verification: %v", ti, err)
		}
		cfg := ClusterConfig{Model: m, Nodes: tr.nodes, PPN: tr.ppn, Seed: int64(ti + 1), Fabric: tr.fabric}
		var rep *FlowReport
		st, err := RunClusterDebug(cfg, func(c comm.Comm) error {
			ex := sched.NewExec(s)
			send := comm.Virtual(p * tr.block)
			recv := comm.Virtual(p * tr.block)
			return ex.Run(c, send, recv, tr.block, nil)
		}, func(net *Network, final float64) {
			// Pre-report, with access to the live queues: everything still
			// booked must have finished serializing by the end of the run —
			// the queues are only lazily drained, never actually occupied
			// past the last flow.
			eps := 1e-9 * (1 + final)
			for li := range net.flow.links {
				l := &net.flow.links[li]
				if l.nextFree > final+eps {
					t.Errorf("trial %d: link %d->%d busy until %.9g, past run end %.9g",
						ti, l.from, l.to, l.nextFree, final)
				}
				for _, b := range l.queue {
					if b.finish > final+eps {
						t.Errorf("trial %d: link %d->%d holds a booking finishing at %.9g, past run end %.9g",
							ti, l.from, l.to, b.finish, final)
					}
				}
			}
			rep = net.FlowReport()
		})
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", ti, tr, err)
		}
		if rep == nil {
			t.Fatalf("trial %d: no flow report despite fabric %q", ti, tr.fabric)
		}
		var linkBlocked, linkQueued float64
		for _, l := range rep.Links {
			if l.BytesEnqueued != l.BytesDrained {
				t.Errorf("trial %d: link %d->%d enqueued %d B but drained %d B",
					ti, l.From, l.To, l.BytesEnqueued, l.BytesDrained)
			}
			linkBlocked += l.BlockedSeconds
			linkQueued += l.QueuedSeconds
		}
		var roundBlocked, roundQueued float64
		for tag, rc := range rep.Rounds {
			if tag < sched.TagBase || tag >= sched.TagBase+len(s.Rounds) {
				t.Errorf("trial %d: congestion attributed to tag %d outside the schedule's rounds", ti, tag)
			}
			roundBlocked += rc.BlockedSeconds
			roundQueued += rc.QueuedSeconds
		}
		close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }
		if !close(roundBlocked, linkBlocked) || !close(roundBlocked, st.LinkBlockedSeconds) {
			t.Errorf("trial %d: blocked time disagrees: rounds %.12g, links %.12g, stats %.12g",
				ti, roundBlocked, linkBlocked, st.LinkBlockedSeconds)
		}
		if !close(roundQueued, linkQueued) || !close(roundQueued, st.LinkQueuedSeconds) {
			t.Errorf("trial %d: queued time disagrees: rounds %.12g, links %.12g, stats %.12g",
				ti, roundQueued, linkQueued, st.LinkQueuedSeconds)
		}
		sawQueued = sawQueued || linkQueued > 0
		sawBlocked = sawBlocked || linkBlocked > 0
	}
	if !sawQueued || !sawBlocked {
		t.Errorf("fuzz never exercised contention (queued seen: %v, blocked seen: %v)", sawQueued, sawBlocked)
	}
}

// TestFlowConfigFailFast pins the flow level's error paths: a fabric on a
// model without link parameters, an unknown fabric kind, and a hypercube
// over a non-power-of-two node count are all rejected before any rank
// spawns.
func TestFlowConfigFailFast(t *testing.T) {
	t.Parallel()
	noop := func(c comm.Comm) error { return nil }
	cases := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"no link params", ClusterConfig{Model: cleanModel(), Nodes: 4, PPN: 2, Fabric: "ring"}},
		{"unknown kind", ClusterConfig{Model: netmodel.Dane(), Nodes: 4, PPN: 2, Fabric: "mesh"}},
		{"odd hypercube", ClusterConfig{Model: netmodel.Dane(), Nodes: 6, PPN: 2, Fabric: "hypercube"}},
	}
	for _, c := range cases {
		if _, err := RunCluster(c.cfg, noop); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if testing.Verbose() {
			fmt.Printf("%s: %v\n", c.name, err)
		}
	}
}
