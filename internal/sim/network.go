package sim

import (
	"fmt"
	"math"
	"math/rand"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/topo"
)

// resource is a FIFO-served shared resource (a NUMA memory bus, an
// inter-socket link, a NIC port, a core's copy engine). nextFree is the
// virtual time the resource becomes idle; lastUser tracks the previous
// peer for the NIC interleaving penalty; busy accumulates service time for
// utilization diagnostics.
type resource struct {
	nextFree float64
	lastUser int
	busy     float64
}

// reserveHook observes every reservation (testing and model-calibration
// diagnostics only). It is carried per Network (ClusterConfig.debugReserve)
// rather than as a package global so parallel tests don't race on it.
type reserveHook func(r *resource, ready, start, dur float64)

// reserve books the resource for a transfer of the given duration starting
// no earlier than ready, and returns the finish time.
func (r *resource) reserve(ready, dur float64, hook reserveHook) float64 {
	start := ready
	if r.nextFree > start {
		start = r.nextFree
	}
	if hook != nil {
		hook(r, ready, start, dur)
	}
	r.nextFree = start + dur
	r.busy += dur
	return r.nextFree
}

// hop is one resource on a message path together with its service rate and
// per-message cost. Shared hops (memory buses, NIC ports, socket links) are
// reserved jointly for the transfer's bottleneck duration — modeling
// cut-through/pipelined hardware rather than store-and-forward, so a
// message does not pay every hop's serialization twice. Dedicated hops
// (the receiver core's copy engine) serialize after the shared stage.
type hop struct {
	res        *resource
	rate       float64
	perMsg     float64
	interleave float64 // fractional duration penalty when senders interleave
	dedicated  bool
	link       *flowLink // fabric link stage (flow-level contention model)
}

// Network simulates the cluster fabric: topology-aware paths over shared
// resources, MPI-style matching with posted/unexpected queues, and eager/
// rendezvous protocols. All methods are called from rank processes running
// under the engine's one-at-a-time discipline, so no locking is needed.
type Network struct {
	e       *Engine
	p       netmodel.Params
	mapping *topo.Mapping
	scale   float64 // overhead scale (vendor profile); 1.0 normally

	numaBus    [][]resource // [node][numaPerNode]
	socketLink []resource   // [node]
	nicOut     []resource   // [node]
	nicIn      []resource   // [node]
	cores      []resource   // [world rank] receive-side copy engine

	boxes []simMailbox // [world rank]

	// flow is the optional flow-level contention model (per-link FIFO
	// queues over a topo.Fabric); nil runs the analytic model alone.
	flow *flowState

	debugReserve reserveHook

	rng      *rand.Rand
	msgsSent uint64
}

// NewNetwork builds the fabric for a mapping under the given model. seed
// fixes the noise stream; overheadScale scales software overheads (used by
// the system-MPI vendor profile; pass 1 otherwise). fabric, when non-empty,
// names a topo.Fabric kind and enables the flow-level contention model
// over the mapping's nodes; it errors when the model carries no
// FabricLinkBW.
func NewNetwork(e *Engine, p netmodel.Params, mapping *topo.Mapping, seed int64, overheadScale float64, fabric string) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if overheadScale <= 0 {
		return nil, fmt.Errorf("sim: overheadScale must be positive, got %g", overheadScale)
	}
	n := &Network{
		e: e, p: p, mapping: mapping, scale: overheadScale,
		rng: rand.New(rand.NewSource(seed)),
	}
	nodes := mapping.Nodes()
	if fabric != "" {
		fs, err := newFlowState(fabric, nodes, p.FabricLinkBW, p.FabricQueueBytes)
		if err != nil {
			return nil, err
		}
		n.flow = fs
	}
	n.numaBus = make([][]resource, nodes)
	for i := range n.numaBus {
		n.numaBus[i] = make([]resource, p.Node.NumaPerNode())
	}
	n.socketLink = make([]resource, nodes)
	n.nicOut = make([]resource, nodes)
	n.nicIn = make([]resource, nodes)
	n.cores = make([]resource, mapping.Size())
	n.boxes = make([]simMailbox, mapping.Size())
	return n, nil
}

// MessagesSent returns the count of point-to-point messages simulated.
func (n *Network) MessagesSent() uint64 { return n.msgsSent }

// PortReport summarizes NIC port usage for diagnostics: busy is total
// service time, span the time of the last booking's completion.
type PortReport struct {
	OutBusy, OutSpan float64
	InBusy, InSpan   float64
}

// Ports returns the per-node NIC port report.
func (n *Network) Ports() []PortReport {
	out := make([]PortReport, len(n.nicOut))
	for i := range out {
		out[i] = PortReport{
			OutBusy: n.nicOut[i].busy, OutSpan: n.nicOut[i].nextFree,
			InBusy: n.nicIn[i].busy, InSpan: n.nicIn[i].nextFree,
		}
	}
	return out
}

// noise returns a multiplicative lognormal factor (mean ~1) for overheads.
func (n *Network) noise() float64 {
	if n.p.NoiseSigma == 0 {
		return 1
	}
	s := n.p.NoiseSigma
	return math.Exp(n.rng.NormFloat64()*s - s*s/2)
}

// spike returns an additive rare OS-noise detour in seconds.
func (n *Network) spike() float64 {
	if n.p.SpikeProb == 0 || n.rng.Float64() >= n.p.SpikeProb {
		return 0
	}
	return n.rng.ExpFloat64() * n.p.SpikeMean
}

// overhead returns a noisy, scaled per-operation CPU cost.
func (n *Network) overhead(base float64) float64 {
	return base*n.scale*n.noise() + n.spike()
}

// copyTime returns the single-core copy duration for b bytes.
func (n *Network) copyTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / n.p.CopyBW * n.scale
}

// path returns the hop list from src to dst world ranks, plus the locality
// level. Intra-node paths end at the destination core's copy engine
// (shared-memory transfers are CPU-driven copies); inter-node paths use
// NIC DMA and stop at the destination NUMA bus.
func (n *Network) path(src, dst int, hops []hop) ([]hop, topo.Level) {
	m := n.mapping
	level := m.LevelBetween(src, dst)
	sNode, dNode := m.NodeOf(src), m.NodeOf(dst)
	sNuma := m.NumaOf(m.LocalRank(src))
	dNuma := m.NumaOf(m.LocalRank(dst))
	busRate, busMsg := n.p.NumaBW, n.p.BusMsgCost*n.scale
	hops = hops[:0]
	switch level {
	case topo.Self:
		// Local "transfer": only the core copy engine.
		hops = append(hops, hop{res: &n.cores[dst], rate: n.p.CopyBW, perMsg: 0, dedicated: true})
	case topo.IntraNuma:
		hops = append(hops,
			hop{res: &n.numaBus[sNode][sNuma], rate: busRate, perMsg: busMsg},
			hop{res: &n.cores[dst], rate: n.p.CopyBW, perMsg: 0, dedicated: true})
	case topo.IntraSocket:
		hops = append(hops,
			hop{res: &n.numaBus[sNode][sNuma], rate: busRate, perMsg: busMsg},
			hop{res: &n.numaBus[dNode][dNuma], rate: busRate, perMsg: busMsg},
			hop{res: &n.cores[dst], rate: n.p.CopyBW, perMsg: 0, dedicated: true})
	case topo.InterSocket:
		hops = append(hops,
			hop{res: &n.numaBus[sNode][sNuma], rate: busRate, perMsg: busMsg},
			hop{res: &n.socketLink[sNode], rate: n.p.SocketLinkBW, perMsg: busMsg},
			hop{res: &n.numaBus[dNode][dNuma], rate: busRate, perMsg: busMsg},
			hop{res: &n.cores[dst], rate: n.p.CopyBW, perMsg: 0, dedicated: true})
	case topo.InterNode:
		// The NIC ports are the binding inter-node resources (the memory
		// buses are 2-3x faster and never bind for wire traffic), so the
		// analytic path is just the two ports. With a fabric configured,
		// the route's links sit between them as cut-through stages: free
		// when idle, a queueing delay when shared (see flow.go).
		nicMsg := n.p.NICMsgCost * n.scale
		hops = append(hops,
			hop{res: &n.nicOut[sNode], rate: n.p.NICBW, perMsg: nicMsg, interleave: n.p.InterleavePenalty})
		if n.flow != nil {
			for _, id := range n.flow.routeLinks(sNode, dNode) {
				hops = append(hops, hop{link: &n.flow.links[id]})
			}
		}
		hops = append(hops,
			hop{res: &n.nicIn[dNode], rate: n.p.NICBW, perMsg: nicMsg, interleave: n.p.InterleavePenalty})
	}
	return hops, level
}

// transfer books a message of the given size from ready time, stage by
// stage. The first stage is reserved immediately (ready is the caller's
// current virtual time); every subsequent stage is reserved by an event
// fired when the payload clears the previous stage. Booking stages at
// their actual start times is essential: reserving future slots up front
// would let one far-future booking push a scalar FIFO's nextFree forward
// and leave the resource idle for every later (but earlier-in-time)
// booking — a head-of-line artifact, not network physics.
//
// onSendDone, if non-nil, fires when the first (source-side) stage is
// clear — the rendezvous sender's buffer lifetime. onArrival fires when
// the payload has fully arrived (last stage plus wire latency). src
// identifies the sender for the NIC interleaving penalty; tag attributes
// fabric-link congestion to the message's round (sched executor tagging).
func (n *Network) transfer(ready float64, bytes, src, tag int, hops []hop, level topo.Level,
	onSendDone, onArrival func(t float64)) {
	n.msgsSent++
	lat := n.p.Latency(level)
	// The interleaving penalty tracks the source *node*: a port drained by
	// long same-source runs (node-aware aggregation, aligned pairwise
	// steps) streams at full rate, while fine-grained exchanges that mix
	// flows from many nodes pay the congestion/reordering cost.
	srcNode := n.mapping.NodeOf(src)
	var step func(i int, t float64)
	step = func(i int, t float64) {
		h := hops[i]
		if h.link != nil {
			// Cut-through fabric link: the head moves on the moment the
			// link starts serving it (zero added time when uncontended —
			// the NIC ports stay the serialization points), while the
			// link stays occupied for the payload's full serialization,
			// which is what queues and backpressures later flows.
			start, blocked, queued := h.link.admit(t, bytes)
			n.flow.note(tag, bytes, blocked, queued)
			if start > t {
				n.e.At(start, func() { step(i+1, start) })
			} else {
				step(i+1, t)
			}
			return
		}
		dur := h.perMsg
		if bytes > 0 {
			d := float64(bytes) / h.rate
			if h.interleave > 0 && h.res.lastUser != srcNode {
				d *= 1 + h.interleave
			}
			dur += d
		}
		h.res.lastUser = srcNode
		finish := h.res.reserve(t, dur, n.debugReserve)
		if i == 0 && onSendDone != nil {
			onSendDone(finish)
		}
		if i == len(hops)-1 {
			onArrival(finish + lat)
			return
		}
		n.e.At(finish, func() { step(i+1, finish) })
	}
	step(0, ready)
}

// envelope identifies a message for matching.
type envelope struct {
	ctx int64
	src int // sender's communicator rank
	tag int
}

// simReq is a simulated request: completion time is "determined"
// arithmetically at match time; waiters park until all their requests are
// determined.
type simReq struct {
	determined bool
	t          float64
	err        error
	w          *waiter
}

// Pending reports whether the request's completion is not yet determined.
func (r *simReq) Pending() bool { return !r.determined }

type waiter struct {
	p         *Proc
	remaining int
	tMax      float64
}

func (n *Network) determine(r *simReq, t float64, err error) {
	if r.determined {
		n.e.Fail(fmt.Errorf("sim: request determined twice"))
		return
	}
	r.determined = true
	r.t = t
	r.err = err
	if w := r.w; w != nil {
		r.w = nil
		w.remaining--
		if t > w.tMax {
			w.tMax = t
		}
		if w.remaining == 0 {
			n.e.WakeAt(w.p, w.tMax)
		}
	}
}

// simMsg is a message in an unexpected queue: either a buffered eager
// payload or a rendezvous RTS waiting for its receive.
type simMsg struct {
	env     envelope
	bytes   int
	payload []byte // eager copy when the send buffer was real

	tArrive float64 // eager: payload arrival time

	rdv         bool
	tRTSArrive  float64
	senderReady float64
	sendReq     *simReq
	sendBuf     comm.Buffer
	srcWorld    int
	dstWorld    int
}

// simPosted is a receive waiting in a posted queue.
type simPosted struct {
	env    envelope
	buf    comm.Buffer
	req    *simReq
	tReady float64
	world  int // receiver world rank
}

// simMailbox holds one rank's matching queues (FIFO per envelope).
type simMailbox struct {
	unexpected []simMsg
	posted     []simPosted
}

// Isend begins a send on behalf of process p. srcRank is the sender's rank
// inside the communicator identified by ctx; srcW/dstW are world ranks.
func (n *Network) Isend(p *Proc, srcW, dstW int, ctx int64, srcRank, tag int, b comm.Buffer) *simReq {
	p.Sync()
	return n.isend(p, srcW, dstW, ctx, srcRank, tag, b)
}

// isend is Isend after the caller has already synchronized with global
// virtual time (combined operations like Sendrecv sync once for both
// halves: the two ops happen within an overhead of each other, and one
// park instead of two matters at tens of millions of messages).
func (n *Network) isend(p *Proc, srcW, dstW int, ctx int64, srcRank, tag int, b comm.Buffer) *simReq {
	p.Advance(n.overhead(n.p.SendOverhead))
	req := &simReq{}
	if b.Len() <= n.p.EagerMax {
		// Eager: the sender copies the payload into a bounce buffer and is
		// free as soon as that local copy finishes — it does NOT wait for
		// the wire. This decoupling is what lets eager pairwise steps
		// pipeline through the NIC instead of convoying. The message
		// becomes matchable at the receiver when the payload arrives.
		var payload []byte
		if !b.IsVirtual() && b.Len() > 0 {
			payload = make([]byte, b.Len())
			copy(payload, b.Bytes())
		}
		env := envelope{ctx: ctx, src: srcRank, tag: tag}
		length := b.Len()
		hops, level := n.path(srcW, dstW, nil)
		n.determine(req, p.now+n.copyTime(length), nil)
		n.transfer(p.now, length, srcW, tag, hops, level, nil, func(arrival float64) {
			n.deliverEager(dstW, env, length, payload, arrival)
		})
		return req
	}
	// Rendezvous: an RTS races ahead; the transfer is scheduled when the
	// matching receive exists (see beginRendezvous).
	level := n.mapping.LevelBetween(srcW, dstW)
	msg := simMsg{
		env:         envelope{ctx: ctx, src: srcRank, tag: tag},
		bytes:       b.Len(),
		rdv:         true,
		tRTSArrive:  p.now + n.p.Latency(level),
		senderReady: p.now,
		sendReq:     req,
		sendBuf:     b,
		srcWorld:    srcW,
		dstWorld:    dstW,
	}
	box := &n.boxes[dstW]
	if i := findPosted(box, msg.env); i >= 0 {
		post := takePosted(box, i)
		n.beginRendezvous(msg, post)
	} else {
		box.unexpected = append(box.unexpected, msg)
	}
	return req
}

// Irecv posts a receive for process p (world rank dstW) on communicator
// ctx from srcRank with the given tag.
func (n *Network) Irecv(p *Proc, dstW int, ctx int64, srcRank, tag int, b comm.Buffer) *simReq {
	p.Sync()
	return n.irecv(p, dstW, ctx, srcRank, tag, b)
}

// irecv is Irecv after the caller has synchronized with global time.
func (n *Network) irecv(p *Proc, dstW int, ctx int64, srcRank, tag int, b comm.Buffer) *simReq {
	box := &n.boxes[dstW]
	env := envelope{ctx: ctx, src: srcRank, tag: tag}
	// Queue search: scan the unexpected queue up to the match (or fully).
	idx := findUnexpected(box, env)
	scanned := len(box.unexpected)
	if idx >= 0 {
		scanned = idx + 1
	}
	p.Advance(n.overhead(n.p.RecvOverhead + n.p.MatchCost*float64(scanned)))
	req := &simReq{}
	if idx >= 0 {
		msg := takeUnexpected(box, idx)
		n.completeMatch(msg, simPosted{env: env, buf: b, req: req, tReady: p.now, world: dstW})
		return req
	}
	box.posted = append(box.posted, simPosted{env: env, buf: b, req: req, tReady: p.now, world: dstW})
	return req
}

// deliverEager matches an arriving eager message or buffers it.
func (n *Network) deliverEager(dstW int, env envelope, bytes int, payload []byte, arrival float64) {
	box := &n.boxes[dstW]
	msg := simMsg{env: env, bytes: bytes, payload: payload, tArrive: arrival, dstWorld: dstW}
	if i := findPosted(box, env); i >= 0 {
		post := takePosted(box, i)
		// Matching an arrival against a deep posted queue costs the
		// receiver's progress engine a scan; fold it into completion.
		scan := n.p.MatchCost * float64(i+1) * n.scale
		msg.tArrive += scan
		n.completeMatch(msg, post)
		return
	}
	box.unexpected = append(box.unexpected, msg)
}

// completeMatch finishes a matched (message, receive) pair.
func (n *Network) completeMatch(msg simMsg, post simPosted) {
	if msg.bytes > post.buf.Len() {
		if msg.rdv {
			n.determine(msg.sendReq, msg.senderReady, comm.ErrTruncate)
		}
		n.determine(post.req, post.tReady, comm.ErrTruncate)
		return
	}
	if msg.rdv {
		n.beginRendezvous(msg, post)
		return
	}
	// Eager: receive completes when the payload has arrived, the receive
	// is posted, and the copy out of the bounce buffer is done.
	t := msg.tArrive
	if post.tReady > t {
		t = post.tReady
	}
	t += n.copyTime(msg.bytes)
	if msg.payload != nil && !post.buf.IsVirtual() {
		copy(post.buf.Bytes(), msg.payload)
	}
	n.determine(post.req, t, nil)
}

// beginRendezvous runs the RTS/CTS handshake arithmetic and schedules the
// bulk transfer at its causally correct start time.
func (n *Network) beginRendezvous(msg simMsg, post simPosted) {
	level := n.mapping.LevelBetween(msg.srcWorld, msg.dstWorld)
	lat := n.p.Latency(level)
	// The receiver reacts once the RTS has arrived and the receive is
	// posted; the CTS flies back; the transfer starts when the CTS reaches
	// a sender whose data has been ready since senderReady.
	ctsDepart := msg.tRTSArrive
	if post.tReady > ctsDepart {
		ctsDepart = post.tReady
	}
	ctsArrive := ctsDepart + lat
	tStart := ctsArrive
	if msg.senderReady > tStart {
		tStart = msg.senderReady
	}
	n.e.At(tStart, func() {
		hops, lvl := n.path(msg.srcWorld, msg.dstWorld, nil)
		n.transfer(tStart, msg.bytes, msg.srcWorld, msg.env.tag, hops, lvl,
			func(sendDone float64) { n.determine(msg.sendReq, sendDone, nil) },
			func(arrival float64) {
				if !msg.sendBuf.IsVirtual() && !post.buf.IsVirtual() && msg.bytes > 0 {
					copy(post.buf.Bytes(), msg.sendBuf.Bytes()[:msg.bytes])
				}
				n.determine(post.req, arrival, nil)
			})
	})
}

// Sendrecv posts the receive and performs the send under a single global-
// time synchronization, then waits for both.
func (n *Network) Sendrecv(p *Proc, meW, dstW int, ctx int64, myRank, stag int, sb comm.Buffer, srcRank, rtag int, rb comm.Buffer) error {
	p.Sync()
	rreq := n.irecv(p, meW, ctx, srcRank, rtag, rb)
	sreq := n.isend(p, meW, dstW, ctx, myRank, stag, sb)
	return n.WaitAll(p, []*simReq{rreq, sreq})
}

// WaitAll blocks p until every request is determined, advancing its clock
// to the latest completion, and returns the first error.
func (n *Network) WaitAll(p *Proc, reqs []*simReq) error {
	tMax := p.now
	pending := 0
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if r.determined {
			if r.t > tMax {
				tMax = r.t
			}
		} else {
			pending++
		}
	}
	if pending > 0 {
		w := &waiter{p: p, remaining: pending, tMax: tMax}
		for _, r := range reqs {
			if r != nil && !r.determined {
				r.w = w
			}
		}
		p.Park("waitall")
	} else if tMax > p.now {
		p.now = tMax
	}
	for _, r := range reqs {
		if r != nil && r.err != nil {
			return r.err
		}
	}
	return nil
}

// Memcpy charges a single-core copy to p and moves real bytes.
func (n *Network) Memcpy(p *Proc, dst, src comm.Buffer) error {
	bytes, err := comm.CopyData(dst, src)
	if err != nil {
		return err
	}
	p.Advance((n.copyTime(bytes) + n.p.CopyBlockCost*n.scale) * n.noise())
	return nil
}

// ChargeCopy charges an aggregate repack (bytes moved in blocks separate
// block copies) to p's clock with a single noise draw.
func (n *Network) ChargeCopy(p *Proc, bytes, blocks int) error {
	if bytes < 0 || blocks < 0 {
		return fmt.Errorf("sim: ChargeCopy(%d, %d): negative argument", bytes, blocks)
	}
	p.Advance((n.copyTime(bytes) + n.p.CopyBlockCost*n.scale*float64(blocks)) * n.noise())
	return nil
}

func findPosted(box *simMailbox, env envelope) int {
	for i := range box.posted {
		if box.posted[i].env == env {
			return i
		}
	}
	return -1
}

func findUnexpected(box *simMailbox, env envelope) int {
	for i := range box.unexpected {
		if box.unexpected[i].env == env {
			return i
		}
	}
	return -1
}

func takePosted(box *simMailbox, i int) simPosted {
	p := box.posted[i]
	box.posted = append(box.posted[:i], box.posted[i+1:]...)
	return p
}

func takeUnexpected(box *simMailbox, i int) simMsg {
	m := box.unexpected[i]
	box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
	return m
}
