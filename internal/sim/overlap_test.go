package sim

import (
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/core"
	"alltoallx/internal/netmodel"
)

// TestComputeChargesVirtualTime: with no started operation in flight,
// Compute is exactly a local clock advance.
func TestComputeChargesVirtualTime(t *testing.T) {
	t.Parallel()
	cfg := ClusterConfig{Model: netmodel.Dane(), Nodes: 1, PPN: 2, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		t0 := c.Now()
		if err := c.Compute(0.25); err != nil {
			return err
		}
		if got := c.Now() - t0; got < 0.25-1e-12 || got > 0.25+1e-12 {
			t.Errorf("rank %d: Compute(0.25) advanced %g s", c.Rank(), got)
		}
		if err := c.Compute(-1); err == nil {
			t.Error("negative Compute: no error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapHidesComputeBehindStart: a Start / Compute / Wait sequence
// must cost less virtual time than the blocking exchange plus the same
// compute — the overlap model at work — while never undercutting the
// exchange itself.
func TestOverlapHidesComputeBehindStart(t *testing.T) {
	t.Parallel()
	const (
		nodes = 2
		ppn   = 4
		block = 4096
	)
	run := func(body func(c comm.Comm) error) {
		t.Helper()
		cfg := ClusterConfig{Model: netmodel.Dane(), Nodes: nodes, PPN: ppn, Seed: 7}
		if _, err := RunCluster(cfg, body); err != nil {
			t.Fatal(err)
		}
	}
	p := nodes * ppn
	durs := make([]float64, p)
	run(func(c comm.Comm) error {
		a, err := core.New("pairwise", c, block, core.Options{})
		if err != nil {
			return err
		}
		send, recv := comm.Virtual(p*block), comm.Virtual(p*block)
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := c.Now()
		if err := a.Alltoall(send, recv, block); err != nil {
			return err
		}
		durs[c.Rank()] = c.Now() - t0
		return nil
	})
	tComm := 0.0
	for _, d := range durs {
		if d > tComm {
			tComm = d
		}
	}
	if tComm <= 0 {
		t.Fatalf("blocking exchange took %g s", tComm)
	}

	compute := tComm // fully hideable in the ideal case
	async := make([]float64, p)
	run(func(c comm.Comm) error {
		a, err := core.New("pairwise", c, block, core.Options{})
		if err != nil {
			return err
		}
		send, recv := comm.Virtual(p*block), comm.Virtual(p*block)
		if err := c.Barrier(); err != nil {
			return err
		}
		t0 := c.Now()
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if err := c.Compute(compute); err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		async[c.Rank()] = c.Now() - t0
		return nil
	})
	tAsync := 0.0
	for _, d := range async {
		if d > tAsync {
			tAsync = d
		}
	}
	seq := tComm + compute
	if tAsync >= seq*0.95 {
		t.Errorf("no overlap: async %g s vs sequential %g s", tAsync, seq)
	}
	if tAsync < tComm*0.99 {
		t.Errorf("async %g s undercuts the exchange itself (%g s): overlap model rebated too much", tAsync, tComm)
	}
}

// TestOverlapBudgetWithdrawnAtWait: compute issued after the handle is
// waited pays full price — the budget dies with the handle.
func TestOverlapBudgetWithdrawnAtWait(t *testing.T) {
	t.Parallel()
	const block = 4096
	cfg := ClusterConfig{Model: netmodel.Dane(), Nodes: 2, PPN: 2, Seed: 3}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		p := c.Size()
		a, err := core.New("pairwise", c, block, core.Options{})
		if err != nil {
			return err
		}
		send, recv := comm.Virtual(p*block), comm.Virtual(p*block)
		h, err := a.Start(send, recv, block)
		if err != nil {
			return err
		}
		if err := h.Wait(); err != nil {
			return err
		}
		t0 := c.Now()
		if err := c.Compute(0.5); err != nil {
			return err
		}
		if got := c.Now() - t0; got < 0.5-1e-12 {
			t.Errorf("rank %d: post-Wait Compute charged only %g s (budget leaked past Wait)", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
