package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"alltoallx/internal/comm"
	"alltoallx/internal/netmodel"
	"alltoallx/internal/testutil"
	"alltoallx/internal/topo"
)

// cleanModel is a deterministic model with simple constants for exact-ish
// timing assertions: noise off, negligible bus costs.
func cleanModel() netmodel.Params {
	return netmodel.Params{
		Name: "clean", Node: topo.Spec{Sockets: 1, NumaPerSocket: 2, CoresPerNuma: 4},
		LatIntraNuma: 1e-7, LatIntraSocket: 2e-7, LatInterSocket: 3e-7, LatInterNode: 1e-6,
		SendOverhead: 1e-7, RecvOverhead: 1e-7, MatchCost: 0,
		CopyBW: 1e12, CopyBlockCost: 0, NumaBW: 1e13, SocketLinkBW: 1e13,
		NICBW: 1e9, NICMsgCost: 1e-6, BusMsgCost: 0, InterleavePenalty: 0,
		EagerMax: 1024,
		Sys: netmodel.SysProfile{
			SmallAlgo: "bruck", SmallMax: 256,
			MidAlgo: "nonblocking", MidMax: 1024,
			LargeAlgo: "pairwise", OverheadScale: 1,
		},
	}
}

func TestClusterConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := RunCluster(ClusterConfig{Model: cleanModel(), Nodes: 0, PPN: 4}, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := cleanModel()
	bad.NICBW = 0
	if _, err := RunCluster(ClusterConfig{Model: bad, Nodes: 1, PPN: 2}, func(c comm.Comm) error { return nil }); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimPingPongPayloadAndTiming(t *testing.T) {
	t.Parallel()
	m := cleanModel()
	recvDone := make([]float64, 16)
	cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 8, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		b := comm.Alloc(100)
		switch c.Rank() {
		case 0: // node 0 -> node 1: inter-node eager
			testutil.FillBlock(b, 0, 8)
			return c.Send(b, 8, 1)
		case 8:
			if err := c.Recv(b, 0, 1); err != nil {
				return err
			}
			recvDone[8] = c.Now()
			return testutil.CheckBlock(b, 0, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: send overhead + 2 NIC message costs + wire latency.
	min := 1e-7 + 2*1e-6 + 1e-6
	// Upper bound adds the serialization and copy slack.
	max := min + 1e-6
	if recvDone[8] < min || recvDone[8] > max {
		t.Errorf("inter-node eager completion %g outside [%g, %g]", recvDone[8], min, max)
	}
}

func TestNICSerialization(t *testing.T) {
	t.Parallel()
	// Two senders on node 0 each ship 1000B to node 1 at NICBW=1e9:
	// transfers serialize at the NIC, so the later completion must be
	// at least two transfer durations after the first was injected.
	m := cleanModel()
	m.NICMsgCost = 0
	var tA, tB float64
	cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 8, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		b := comm.Alloc(1000)
		switch c.Rank() {
		case 0:
			return c.Send(b, 8, 1)
		case 1:
			return c.Send(b, 9, 1)
		case 8:
			if err := c.Recv(b, 0, 1); err != nil {
				return err
			}
			tA = c.Now()
		case 9:
			if err := c.Recv(b, 1, 1); err != nil {
				return err
			}
			tB = c.Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	later := tA
	if tB > later {
		later = tB
	}
	// One transfer is 1 us at the NIC; the second must queue behind it on
	// both ports, so the later finish is >= 2 us + latency.
	if later < 3e-6 {
		t.Errorf("no NIC serialization visible: later completion %g", later)
	}
}

func TestRendezvousSynchronizes(t *testing.T) {
	t.Parallel()
	m := cleanModel()
	var sendReturn float64
	const postTime = 5e-3
	cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 8, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		b := comm.Alloc(100000) // > EagerMax: rendezvous
		switch c.Rank() {
		case 0:
			testutil.FillBlock(b, 0, 8)
			if err := c.Send(b, 8, 1); err != nil {
				return err
			}
			sendReturn = c.Now()
		case 8:
			// Post late: the sender must stall until we arrive.
			if sc, ok := c.(*SimComm); ok {
				sc.p.SleepUntil(postTime)
			}
			if err := c.Recv(b, 0, 1); err != nil {
				return err
			}
			return testutil.CheckBlock(b, 0, 8)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendReturn < postTime {
		t.Errorf("rendezvous sender returned at %g before receiver posted at %g", sendReturn, postTime)
	}
}

func TestEagerDoesNotSynchronize(t *testing.T) {
	t.Parallel()
	m := cleanModel()
	var sendReturn float64
	cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 8, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		b := comm.Alloc(64) // eager
		switch c.Rank() {
		case 0:
			if err := c.Send(b, 8, 1); err != nil {
				return err
			}
			sendReturn = c.Now()
		case 8:
			if sc, ok := c.(*SimComm); ok {
				sc.p.SleepUntil(1e-2)
			}
			return c.Recv(b, 0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendReturn > 1e-4 {
		t.Errorf("eager sender blocked until %g", sendReturn)
	}
}

func TestSimMatchingSelectivity(t *testing.T) {
	t.Parallel()
	cfg := ClusterConfig{Model: cleanModel(), Nodes: 1, PPN: 3, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		b := comm.Alloc(1)
		switch c.Rank() {
		case 0:
			b.Bytes()[0] = 10
			if err := c.Send(b, 2, 1); err != nil {
				return err
			}
			b.Bytes()[0] = 11
			return c.Send(b, 2, 2)
		case 1:
			b.Bytes()[0] = 20
			return c.Send(b, 2, 1)
		case 2:
			if err := c.Recv(b, 1, 1); err != nil {
				return err
			}
			if b.Bytes()[0] != 20 {
				return fmt.Errorf("src selectivity: got %d", b.Bytes()[0])
			}
			if err := c.Recv(b, 0, 2); err != nil {
				return err
			}
			if b.Bytes()[0] != 11 {
				return fmt.Errorf("tag selectivity: got %d", b.Bytes()[0])
			}
			if err := c.Recv(b, 0, 1); err != nil {
				return err
			}
			if b.Bytes()[0] != 10 {
				return fmt.Errorf("fifo remainder: got %d", b.Bytes()[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimTruncation(t *testing.T) {
	t.Parallel()
	cfg := ClusterConfig{Model: cleanModel(), Nodes: 1, PPN: 2, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(comm.Alloc(512), 1, 1)
		}
		err := c.Recv(comm.Alloc(8), 0, 1)
		if !errors.Is(err, comm.ErrTruncate) {
			return fmt.Errorf("want ErrTruncate, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimDeadlockDiagnosis(t *testing.T) {
	t.Parallel()
	cfg := ClusterConfig{Model: cleanModel(), Nodes: 1, PPN: 2, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		if c.Rank() == 0 {
			return c.Recv(comm.Alloc(8), 1, 9) // never sent
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not diagnosed: %v", err)
	}
}

func TestSimBarrierSynchronizes(t *testing.T) {
	t.Parallel()
	m := cleanModel()
	times := make([]float64, 8)
	cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 4, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		if sc, ok := c.(*SimComm); ok {
			// Stagger arrivals; the barrier must hold everyone until the
			// latest.
			sc.p.SleepUntil(float64(c.Rank()) * 1e-3)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		times[c.Rank()] = c.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	latest := 7 * 1e-3
	for r, tm := range times {
		if tm < latest {
			t.Errorf("rank %d passed barrier at %g before last arrival %g", r, tm, latest)
		}
		if tm > latest+1e-3 {
			t.Errorf("rank %d barrier exit %g too late", r, tm)
		}
	}
}

func TestSimSplitIsolation(t *testing.T) {
	t.Parallel()
	cfg := ClusterConfig{Model: cleanModel(), Nodes: 2, PPN: 4, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Negative color path (collective: every world rank calls Split).
		color := 0
		if c.Rank() >= 4 {
			color = -1
		}
		none, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() >= 4 && none != nil {
			return fmt.Errorf("negative color returned a communicator")
		}
		if c.Rank() < 4 && (none == nil || none.Size() != 4) {
			return fmt.Errorf("positive color group malformed: %v", none)
		}
		b := comm.Alloc(2)
		if sub.Rank() == 0 {
			b.Bytes()[0] = byte(c.Rank() % 2)
			for r := 1; r < sub.Size(); r++ {
				if err := sub.Send(b, r, 0); err != nil {
					return err
				}
			}
			return nil
		}
		if err := sub.Recv(b, 0, 0); err != nil {
			return err
		}
		if int(b.Bytes()[0]) != c.Rank()%2 {
			return fmt.Errorf("cross-communicator leak")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimDeterminismAcrossRuns(t *testing.T) {
	t.Parallel()
	m := netmodel.Dane()
	m.Node = topo.Spec{Sockets: 2, NumaPerSocket: 2, CoresPerNuma: 2}
	run := func(seed int64) float64 {
		var total float64
		cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 8, Seed: seed}
		_, err := RunCluster(cfg, func(c comm.Comm) error {
			b := comm.Alloc(64)
			n := c.Size()
			for i := 1; i < n; i++ {
				sp := (c.Rank() + i) % n
				rp := (c.Rank() - i + n) % n
				if err := c.Sendrecv(b, sp, 1, comm.Alloc(64), rp, 1); err != nil {
					return err
				}
			}
			if c.Rank() == 0 {
				total = c.Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	if a, b := run(11), run(11); a != b {
		t.Errorf("same seed diverged: %g vs %g", a, b)
	}
	if a, b := run(11), run(12); a == b {
		t.Errorf("different seeds produced identical times %g (noise not applied?)", a)
	}
}

func TestQueueSearchCost(t *testing.T) {
	t.Parallel()
	// A receive that scans a deep unexpected queue must cost more than one
	// that matches immediately.
	m := cleanModel()
	m.MatchCost = 1e-6
	const depth = 50
	var shallow, deep float64
	cfg := ClusterConfig{Model: m, Nodes: 1, PPN: 2, Seed: 1}
	_, err := RunCluster(cfg, func(c comm.Comm) error {
		if c.Rank() == 0 {
			b := comm.Alloc(1)
			for i := 0; i < depth; i++ {
				if err := c.Send(b, 1, 100+i); err != nil { // never received
					return err
				}
			}
			return c.Send(b, 1, 7)
		}
		if sc, ok := c.(*SimComm); ok {
			sc.p.SleepUntil(1e-2) // let everything arrive
		}
		b := comm.Alloc(1)
		t0 := c.Now()
		if err := c.Recv(b, 0, 7); err != nil { // scans depth entries
			return err
		}
		deep = c.Now() - t0
		t0 = c.Now()
		req, err := c.Irecv(b, 0, 99) // matches nothing: full scan of depth remaining
		if err != nil {
			return err
		}
		shallow = c.Now() - t0
		_ = req // left pending deliberately; engine finishes when procs do
		return nil
	})
	// The pending Irecv leaves no deadlock: the proc finished.
	if err != nil {
		t.Fatal(err)
	}
	if deep < depth*1e-6 {
		t.Errorf("deep queue search cost %g, want >= %g", deep, float64(depth)*1e-6)
	}
	if shallow <= 0 {
		t.Errorf("scan cost not charged: %g", shallow)
	}
}

func TestOverheadScaleSpeedsUp(t *testing.T) {
	t.Parallel()
	m := cleanModel()
	run := func(scale float64) float64 {
		var done float64
		cfg := ClusterConfig{Model: m, Nodes: 2, PPN: 2, Seed: 1, OverheadScale: scale}
		_, err := RunCluster(cfg, func(c comm.Comm) error {
			b := comm.Alloc(16)
			if c.Rank() == 0 {
				for i := 0; i < 10; i++ {
					if err := c.Send(b, 2, i); err != nil {
						return err
					}
				}
			}
			if c.Rank() == 2 {
				for i := 0; i < 10; i++ {
					if err := c.Recv(b, 0, i); err != nil {
						return err
					}
				}
				done = c.Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	full, tuned := run(1.0), run(0.5)
	if tuned >= full {
		t.Errorf("overhead scale 0.5 not faster: %g vs %g", tuned, full)
	}
}
