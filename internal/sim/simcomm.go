package sim

import (
	"errors"
	"fmt"
	"sort"

	"alltoallx/internal/comm"
	"alltoallx/internal/topo"
)

// SimComm is one simulated rank's communicator handle. It implements
// comm.Comm on top of the Network, so the same algorithm code that runs on
// the live runtime runs here under virtual time.
type SimComm struct {
	cl       *cluster
	p        *Proc
	id       int64 // context id; internal protocol traffic uses -(id+1)
	rank     int
	ranks    []int // comm rank -> world rank
	isWorld  bool
	splitSeq int
}

var (
	_ comm.Comm         = (*SimComm)(nil)
	_ comm.AsyncStarter = (*SimComm)(nil)
)

// Rank returns this process's rank in the communicator.
func (c *SimComm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *SimComm) Size() int { return len(c.ranks) }

// Topo returns the world mapping on the world communicator, nil otherwise.
func (c *SimComm) Topo() *topo.Mapping {
	if c.isWorld {
		return c.cl.mapping
	}
	return nil
}

// Now returns the rank's virtual time in seconds.
func (c *SimComm) Now() float64 { return c.p.Now() }

// Memcpy copies src to dst, charging single-core copy time.
func (c *SimComm) Memcpy(dst, src comm.Buffer) error {
	return c.cl.net.Memcpy(c.p, dst, src)
}

// ChargeCopy charges an aggregate repack of the given volume and block
// count to this rank's clock.
func (c *SimComm) ChargeCopy(bytes, blocks int) error {
	return c.cl.net.ChargeCopy(c.p, bytes, blocks)
}

// Compute charges `seconds` of application computation to this rank's
// virtual clock, minus whatever portion hides behind the rank's
// outstanding started operations (see StartAsync). With no operation in
// flight it is exactly an Advance: compute is CPU-busy time. The charge is
// purely local — no shared simulator state is touched — so no global-time
// synchronization is needed.
func (c *SimComm) Compute(seconds float64) error {
	if seconds < 0 {
		return fmt.Errorf("sim: Compute(%g): negative duration", seconds)
	}
	remaining := seconds
	for _, tok := range c.p.overlap {
		if remaining <= 0 {
			break
		}
		hide := tok.budget
		if hide > remaining {
			hide = remaining
		}
		tok.budget -= hide
		remaining -= hide
	}
	c.p.Advance(remaining)
	return nil
}

// simToken is the simulator's comm.Async. The body has already executed
// eagerly by the time the token exists (see StartAsync); what remains is
// its overlap budget — the waiting time the exchange left on the table,
// which Compute calls on the same rank draw down until the token is
// joined.
type simToken struct {
	p      *Proc
	err    error
	budget float64 // waited seconds still hideable behind Compute
}

// Join completes the token, withdrawing any unconsumed overlap budget:
// once the handle is waited, later compute can no longer pretend to have
// run during the exchange.
func (t *simToken) Join() error {
	t.release()
	return t.err
}

// TryJoin reports completion (always true: the body ran eagerly) and
// releases the budget like Join.
func (t *simToken) TryJoin() (bool, error) {
	t.release()
	return true, t.err
}

func (t *simToken) release() {
	for i, tok := range t.p.overlap {
		if tok == t {
			t.p.overlap = append(t.p.overlap[:i], t.p.overlap[i+1:]...)
			return
		}
	}
}

// StartAsync is the simulator's comm.AsyncStarter. A simulated rank is a
// single coroutine under the event loop, so the body cannot literally run
// concurrently with the caller; instead it executes eagerly — advancing
// virtual time and moving messages exactly as the blocking call would —
// and the time the rank spent *parked* during the exchange (waiting on
// completions rather than busy with overheads and copies) is banked as an
// overlap budget. Subsequent Compute calls consume that budget before
// charging the clock, so a Start / Compute / Wait sequence costs
// busy + max(compute, waited) = max(T_comm, compute + busy): the classic
// overlap model in which only software overhead is unhideable. Messages
// still traverse the network at their blocking-call times — an
// approximation that preserves aggregate contention, since every rank of
// an SPMD program overlaps the same way.
func (c *SimComm) StartAsync(body func() error) comm.Async {
	p := c.p
	t0, b0 := p.Now(), p.Busy()
	err := body()
	waited := (p.Now() - t0) - (p.Busy() - b0)
	if waited < 0 {
		waited = 0
	}
	tok := &simToken{p: p, err: err, budget: waited}
	p.overlap = append(p.overlap, tok)
	return tok
}

// Send blocks until the message is injected (eager) or transferred
// (rendezvous).
func (c *SimComm) Send(b comm.Buffer, dst, tag int) error {
	req, err := c.Isend(b, dst, tag)
	if err != nil {
		return err
	}
	return c.Wait(req)
}

// Recv blocks until a matching message completes into b.
func (c *SimComm) Recv(b comm.Buffer, src, tag int) error {
	req, err := c.Irecv(b, src, tag)
	if err != nil {
		return err
	}
	return c.Wait(req)
}

// tagUntagged is the failure-check threshold for operations that carry
// no application tag (the barrier's internal-context exchanges): at tag
// 0 the rank dies only if its death trigger already fired.
const tagUntagged = 0

// checkFail enforces an injected failure (ClusterConfig.Fail): once this
// world rank's death trigger fires — an operation tagged atTag or higher
// — every operation it attempts returns ErrRankFailed.
func (c *SimComm) checkFail(tag int) error {
	f := c.cl.fail
	if f == nil || c.ranks[c.rank] != f.rank {
		return nil
	}
	if f.dead || tag >= f.atTag {
		f.dead = true
		return fmt.Errorf("%w: rank %d is down (died at tag %d)", ErrRankFailed, f.rank, f.atTag)
	}
	return nil
}

// Isend starts a nonblocking send.
func (c *SimComm) Isend(b comm.Buffer, dst, tag int) (comm.Request, error) {
	if err := comm.CheckPeer(dst, c.Size()); err != nil {
		return nil, err
	}
	if err := comm.CheckTag(tag); err != nil {
		return nil, err
	}
	if err := c.checkFail(tag); err != nil {
		return nil, err
	}
	return c.cl.net.Isend(c.p, c.ranks[c.rank], c.ranks[dst], c.id, c.rank, tag, b), nil
}

// Irecv starts a nonblocking receive.
func (c *SimComm) Irecv(b comm.Buffer, src, tag int) (comm.Request, error) {
	if err := comm.CheckPeer(src, c.Size()); err != nil {
		return nil, err
	}
	if err := comm.CheckTag(tag); err != nil {
		return nil, err
	}
	if err := c.checkFail(tag); err != nil {
		return nil, err
	}
	return c.cl.net.Irecv(c.p, c.ranks[c.rank], c.id, src, tag, b), nil
}

// Wait blocks until the request completes.
func (c *SimComm) Wait(r comm.Request) error {
	if r == nil {
		return nil
	}
	sr, ok := r.(*simReq)
	if !ok {
		return fmt.Errorf("sim: foreign request type %T", r)
	}
	return c.cl.net.WaitAll(c.p, []*simReq{sr})
}

// WaitAll blocks until all requests complete.
func (c *SimComm) WaitAll(rs []comm.Request) error {
	srs := make([]*simReq, 0, len(rs))
	for _, r := range rs {
		if r == nil {
			continue
		}
		sr, ok := r.(*simReq)
		if !ok {
			return fmt.Errorf("sim: foreign request type %T", r)
		}
		srs = append(srs, sr)
	}
	return c.cl.net.WaitAll(c.p, srs)
}

// Sendrecv posts the receive, performs the send, then completes the
// receive — deadlock-free for symmetric exchanges.
func (c *SimComm) Sendrecv(sb comm.Buffer, dst, stag int, rb comm.Buffer, src, rtag int) error {
	if err := comm.CheckPeer(dst, c.Size()); err != nil {
		return err
	}
	if err := comm.CheckPeer(src, c.Size()); err != nil {
		return err
	}
	if err := comm.CheckTag(stag); err != nil {
		return err
	}
	if err := comm.CheckTag(rtag); err != nil {
		return err
	}
	if err := c.checkFail(stag); err != nil {
		return err
	}
	me := c.ranks[c.rank]
	return c.cl.net.Sendrecv(c.p, me, c.ranks[dst], c.id, c.rank, stag, sb, src, rtag, rb)
}

// Barrier is a dissemination barrier over the communicator's internal
// context: ceil(log2 n) rounds of zero-byte exchanges, so barrier cost is
// modeled with the same latency/overhead terms as everything else.
func (c *SimComm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	if err := c.checkFail(tagUntagged); err != nil {
		return err
	}
	me := c.ranks[c.rank]
	ictx := -(c.id + 1)
	empty := comm.Buffer{}
	round := 0
	for k := 1; k < n; k <<= 1 {
		to := c.ranks[(c.rank+k)%n]
		from := (c.rank - k%n + n) % n
		err := c.cl.net.Sendrecv(c.p, me, to, ictx, c.rank, round, empty, from, round, empty)
		if err != nil {
			return fmt.Errorf("sim: barrier round %d (to %d, from %d): %w", round, to, c.ranks[from], err)
		}
		round++
	}
	return nil
}

// Split partitions the communicator (collective, untimed: communicator
// construction is setup, performed outside the paper's timed regions).
// Ranks passing color < 0 receive a nil communicator.
func (c *SimComm) Split(color, key int) (comm.Comm, error) {
	seq := c.splitSeq
	c.splitSeq++
	res := c.cl.split(c, seq, color, key)
	if res == nil {
		return nil, nil
	}
	return res, nil
}

// splitKey identifies one collective Split call on one communicator.
type splitKey struct {
	commID int64
	seq    int
}

type splitEntry struct {
	rank, color, key int
}

type splitGather struct {
	entries []splitEntry
	parked  []*Proc
	results []*SimComm // indexed by parent rank
	readers int
}

// split implements the collective rendezvous: the last arriving rank
// computes the partition and wakes the others without charging time.
func (cl *cluster) split(c *SimComm, seq, color, key int) *SimComm {
	k := splitKey{commID: c.id, seq: seq}
	g := cl.splits[k]
	if g == nil {
		g = &splitGather{}
		cl.splits[k] = g
	}
	g.entries = append(g.entries, splitEntry{rank: c.rank, color: color, key: key})
	if len(g.entries) > c.Size() {
		cl.e.Fail(errSplitSize)
		return nil
	}
	if len(g.entries) < c.Size() {
		g.parked = append(g.parked, c.p)
		c.p.Park("split")
	} else {
		g.results = cl.computeSplit(c, g.entries)
		for _, p := range g.parked {
			cl.e.WakeAt(p, p.Now())
		}
	}
	res := g.results[c.rank]
	g.readers++
	if g.readers == c.Size() {
		delete(cl.splits, k)
	}
	return res
}

// computeSplit builds the new communicators: groups by color, ordered by
// (key, parent rank), each with a fresh context id in deterministic order.
func (cl *cluster) computeSplit(parent *SimComm, entries []splitEntry) []*SimComm {
	results := make([]*SimComm, parent.Size())
	byColor := make(map[int][]splitEntry)
	for _, e := range entries {
		if e.color < 0 {
			continue
		}
		byColor[e.color] = append(byColor[e.color], e)
	}
	colors := make([]int, 0, len(byColor))
	for col := range byColor {
		colors = append(colors, col)
	}
	sort.Ints(colors)
	for _, col := range colors {
		group := byColor[col]
		sort.Slice(group, func(i, j int) bool {
			if group[i].key != group[j].key {
				return group[i].key < group[j].key
			}
			return group[i].rank < group[j].rank
		})
		worldRanks := make([]int, len(group))
		for i, e := range group {
			worldRanks[i] = parent.ranks[e.rank]
		}
		id := cl.nextCtx
		cl.nextCtx++
		for i, e := range group {
			results[e.rank] = &SimComm{
				cl:    cl,
				p:     cl.procs[parent.ranks[e.rank]],
				id:    id,
				rank:  i,
				ranks: worldRanks,
			}
		}
	}
	return results
}

// errSplitSize guards against misuse in tests.
var errSplitSize = errors.New("sim: split gathered more entries than communicator size")
