// Package singleflight coalesces duplicate concurrent calls: all callers
// that arrive with the same key while one execution is in flight share
// that execution's result instead of running their own. The schedule
// cache and registry use it so a (generator, world, rank) is compiled at
// most once no matter how many goroutines race to construct it.
//
// Hand-rolled because the module deliberately has no external
// dependencies; the API mirrors the well-known golang.org/x/sync shape.
package singleflight

import "sync"

// call is one in-flight (or completed) execution.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Group coalesces calls by key. The zero value is ready to use.
type Group struct {
	mu sync.Mutex
	m  map[string]*call // guarded by mu
}

// Do executes fn, ensuring only one execution per key is in flight at a
// time; duplicate callers wait for the original and receive its result.
// shared reports whether this caller joined another caller's execution
// rather than running fn itself.
func (g *Group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
