package singleflight

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoSequential: with no concurrency every call runs its own fn.
func TestDoSequential(t *testing.T) {
	t.Parallel()
	var g Group
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (any, error) { return i, nil })
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if v.(int) != i {
			t.Fatalf("call %d returned %v", i, v)
		}
	}
}

// TestDoCoalesces: N concurrent callers per key, one execution per key,
// everyone gets that execution's value and error.
func TestDoCoalesces(t *testing.T) {
	t.Parallel()
	var g Group
	const callers, keys = 16, 3
	var execs [keys]atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, callers*keys)
	for k := 0; k < keys; k++ {
		k := k
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err, _ := g.Do(fmt.Sprintf("key-%d", k), func() (any, error) {
					<-gate // hold every execution open so callers pile up
					execs[k].Add(1)
					if k == 2 {
						return nil, errors.New("boom")
					}
					return k * 10, nil
				})
				if k == 2 {
					if err == nil {
						errs <- fmt.Errorf("key 2: error not shared")
					}
					return
				}
				if err != nil {
					errs <- err
				} else if v.(int) != k*10 {
					errs <- fmt.Errorf("key %d: got %v", k, v)
				}
			}()
		}
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := 0; k < keys; k++ {
		if n := execs[k].Load(); n < 1 || n > callers {
			t.Errorf("key %d executed %d times", k, n)
		}
	}
}

// TestDoSingleExecutionUnderContention pins the coalescing guarantee
// hard: the winning execution holds the flight open until every caller
// has arrived at Do, so exactly one execution happens.
func TestDoSingleExecutionUnderContention(t *testing.T) {
	t.Parallel()
	var g Group
	const callers = 32
	var execs, entered, sharedCount atomic.Int64
	fn := func() (any, error) {
		// Hold the flight open until all callers are at (or inside) Do,
		// plus a grace period for the last ones to reach the key lookup.
		for entered.Load() < callers {
			runtime.Gosched()
		}
		time.Sleep(100 * time.Millisecond)
		execs.Add(1)
		return "v", nil
	}
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			v, err, shared := g.Do("k", fn)
			if err != nil || v.(string) != "v" {
				t.Errorf("got %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions, want exactly 1", n)
	}
	if sharedCount.Load() != callers-1 {
		t.Fatalf("%d callers saw shared, want %d", sharedCount.Load(), callers-1)
	}
}
