// Package testutil provides deterministic payload patterns for verifying
// all-to-all results: every (source, destination, byte-offset) triple maps
// to a pseudo-random byte (PatternByte), so any misrouted, misplaced or
// corrupted block is detected, not just missing data.
//
// The intended shape of a correctness test is Fill -> collective -> Check:
// FillAlltoall writes rank r's send buffer, the algorithm under test runs,
// and CheckAlltoall proves block s of the receive buffer holds exactly
// what rank s generated for r. Because the pattern is a pure function of
// (src, dst, offset), no reference data is exchanged or stored, and the
// same checks run identically on the live runtime and on the simulator
// with real payloads. Virtual (payload-free) buffers cannot be checked;
// Check functions report an error for them rather than vacuously passing.
package testutil

import (
	"fmt"

	"alltoallx/internal/comm"
)

// PatternByte returns the expected byte at offset idx of the block sent
// from rank src to rank dst.
func PatternByte(src, dst, idx int) byte {
	x := uint32(src)*2654435761 ^ uint32(dst)*40503 ^ uint32(idx)*2246822519
	x ^= x >> 13
	return byte(x)
}

// FillAlltoall writes the send-side pattern for rank into a p*block send
// buffer: block d carries the data destined for rank d.
func FillAlltoall(send comm.Buffer, rank, p, block int) {
	data := send.Bytes()
	if data == nil {
		return
	}
	for d := 0; d < p; d++ {
		for i := 0; i < block; i++ {
			data[d*block+i] = PatternByte(rank, d, i)
		}
	}
}

// CheckAlltoall verifies the receive-side pattern for rank: block s must
// hold the bytes rank s sent to this rank.
func CheckAlltoall(recv comm.Buffer, rank, p, block int) error {
	data := recv.Bytes()
	if data == nil {
		return fmt.Errorf("testutil: cannot check a virtual buffer")
	}
	for s := 0; s < p; s++ {
		for i := 0; i < block; i++ {
			want := PatternByte(s, rank, i)
			got := data[s*block+i]
			if got != want {
				return fmt.Errorf("testutil: rank %d recv block %d byte %d: got %#x, want %#x", rank, s, i, got, want)
			}
		}
	}
	return nil
}

// FillBlock writes the (src, dst) pattern into a single block buffer.
func FillBlock(b comm.Buffer, src, dst int) {
	data := b.Bytes()
	for i := range data {
		data[i] = PatternByte(src, dst, i)
	}
}

// CheckBlock verifies a single block buffer against the (src, dst)
// pattern.
func CheckBlock(b comm.Buffer, src, dst int) error {
	data := b.Bytes()
	if data == nil {
		return fmt.Errorf("testutil: cannot check a virtual buffer")
	}
	for i := range data {
		if want := PatternByte(src, dst, i); data[i] != want {
			return fmt.Errorf("testutil: block (%d->%d) byte %d: got %#x, want %#x", src, dst, i, data[i], want)
		}
	}
	return nil
}
