package topo

import (
	"fmt"
	"math/bits"
	"sort"
)

// Fabric is a direct-connect inter-node interconnect: a set of directed
// links between nodes plus a deterministic minimal route between any two
// nodes. It is the shape the flow-level contention model (internal/sim)
// and the schedule link-load analysis (internal/sched) share: the
// static analysis folds a schedule's per-round message matrix onto the
// same links — so what a2asched print -linkload shows before execution
// is exactly the load the simulator charges during it. The simulator
// books every message onto the links its route traverses.
//
// Three kinds mirror the sched:* schedule family (Basu et al.):
//
//   - "ring": node i links to i±1 (mod n); routes take the shortest
//     direction, ties at n/2 going forward.
//   - "torus": the most-square rows x cols factorization of n; links to
//     the four grid neighbours (wrapping); dimension-ordered routing,
//     columns first within the row ring, then rows — matching the
//     row-then-column block routes of the sched torus generator.
//   - "hypercube": n must be a power of two; node i links to i^(1<<b)
//     for every address bit b; routes fix differing bits in ascending
//     order.
//
// A Fabric models the switched/routed fabric itself: transit traffic is
// forwarded by the links without re-crossing the intermediate nodes' NICs
// (the NICs stay the injection/ejection resources they are in the
// analytic model).
type Fabric struct {
	kind  string
	nodes int
	rows  int // torus
	cols  int // torus
	ids   map[[2]int]int
	edges [][2]int
}

// FabricKinds returns the supported fabric kind names, sorted.
func FabricKinds() []string { return []string{"hypercube", "ring", "torus"} }

// NewFabric builds the named fabric over n nodes. A single-node fabric is
// valid and has no links.
func NewFabric(kind string, nodes int) (*Fabric, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("topo: fabric needs a positive node count, got %d", nodes)
	}
	f := &Fabric{kind: kind, nodes: nodes, ids: make(map[[2]int]int)}
	switch kind {
	case "ring":
		for i := 0; i < nodes; i++ {
			f.addEdge(i, (i+1)%nodes)
			f.addEdge(i, (i-1+nodes)%nodes)
		}
	case "torus":
		f.rows, f.cols = torusGrid(nodes)
		for i := 0; i < nodes; i++ {
			r, c := i/f.cols, i%f.cols
			f.addEdge(i, r*f.cols+(c+1)%f.cols)
			f.addEdge(i, r*f.cols+(c-1+f.cols)%f.cols)
			f.addEdge(i, ((r+1)%f.rows)*f.cols+c)
			f.addEdge(i, ((r-1+f.rows)%f.rows)*f.cols+c)
		}
	case "hypercube":
		if nodes&(nodes-1) != 0 {
			return nil, fmt.Errorf("topo: hypercube fabric needs a power-of-two node count, got %d", nodes)
		}
		for i := 0; i < nodes; i++ {
			for b := 1; b < nodes; b <<= 1 {
				f.addEdge(i, i^b)
			}
		}
	default:
		return nil, fmt.Errorf("topo: unknown fabric kind %q (have %v)", kind, FabricKinds())
	}
	return f, nil
}

// addEdge registers the directed edge a->b once (self-edges and
// duplicates — a 2-ring's two directions collapse onto one neighbour —
// are dropped).
func (f *Fabric) addEdge(a, b int) {
	if a == b {
		return
	}
	k := [2]int{a, b}
	if _, ok := f.ids[k]; ok {
		return
	}
	f.ids[k] = len(f.edges)
	f.edges = append(f.edges, k)
}

// torusGrid returns the most-square rows x cols factorization of n
// (rows <= cols), the same decomposition the sched torus generator falls
// back to without a topology.
func torusGrid(n int) (rows, cols int) {
	rows = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			rows = d
		}
	}
	return rows, n / rows
}

// Kind returns the fabric kind name.
func (f *Fabric) Kind() string { return f.kind }

// Nodes returns the node count.
func (f *Fabric) Nodes() int { return f.nodes }

// Links returns the number of directed links.
func (f *Fabric) Links() int { return len(f.edges) }

// Edge returns the endpoints of directed link id.
func (f *Fabric) Edge(id int) (from, to int) {
	e := f.edges[id]
	return e[0], e[1]
}

// LinkID returns the id of the directed link a->b, or false when the
// fabric has no such link.
func (f *Fabric) LinkID(a, b int) (int, bool) {
	id, ok := f.ids[[2]int{a, b}]
	return id, ok
}

// SortedLinks returns all directed link ids ordered by (from, to) — the
// deterministic order reports and golden files render in.
func (f *Fabric) SortedLinks() []int {
	out := make([]int, len(f.edges))
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := f.edges[out[i]], f.edges[out[j]]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return out
}

// ringHops returns the signed step (+1/-1) and hop count of the shortest
// ring route a->b over n positions (ties go forward).
func ringHops(a, b, n int) (step, hops int) {
	fwd := (b - a + n) % n
	if fwd <= n-fwd {
		return 1, fwd
	}
	return -1, n - fwd
}

// Route returns the minimal node path a = v0, ..., vk = b the fabric
// routes a message along (deterministic; consecutive nodes are linked).
// Route(a, a) is the single-node path.
func (f *Fabric) Route(a, b int) []int {
	path := []int{a}
	switch f.kind {
	case "ring":
		step, hops := ringHops(a, b, f.nodes)
		x := a
		for i := 0; i < hops; i++ {
			x = (x + step + f.nodes) % f.nodes
			path = append(path, x)
		}
	case "torus":
		ar, ac := a/f.cols, a%f.cols
		br, bc := b/f.cols, b%f.cols
		step, hops := ringHops(ac, bc, f.cols)
		c := ac
		for i := 0; i < hops; i++ {
			c = (c + step + f.cols) % f.cols
			path = append(path, ar*f.cols+c)
		}
		step, hops = ringHops(ar, br, f.rows)
		r := ar
		for i := 0; i < hops; i++ {
			r = (r + step + f.rows) % f.rows
			path = append(path, r*f.cols+bc)
		}
	case "hypercube":
		x := a
		for b0 := 0; b0 < bits.Len(uint(f.nodes-1)); b0++ {
			if (x^b)&(1<<b0) != 0 {
				x ^= 1 << b0
				path = append(path, x)
			}
		}
	}
	return path
}

// RouteLinks returns the directed link ids the route a->b traverses, in
// order (empty for a == b).
func (f *Fabric) RouteLinks(a, b int) []int {
	path := f.Route(a, b)
	links := make([]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		id, ok := f.LinkID(path[i], path[i+1])
		if !ok {
			// Route construction only steps along edges; reaching here is a
			// Fabric bug, so fail loudly rather than under-counting load.
			panic(fmt.Sprintf("topo: fabric %s route %d->%d uses missing link %d->%d",
				f.kind, a, b, path[i], path[i+1]))
		}
		links = append(links, id)
	}
	return links
}

func (f *Fabric) String() string {
	if f.kind == "torus" {
		return fmt.Sprintf("torus %dx%d (%d nodes, %d links)", f.rows, f.cols, f.nodes, len(f.edges))
	}
	return fmt.Sprintf("%s (%d nodes, %d links)", f.kind, f.nodes, len(f.edges))
}
