package topo

import (
	"math/rand"
	"testing"
)

func TestFabricValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewFabric("ring", 0); err == nil {
		t.Error("zero-node fabric accepted")
	}
	if _, err := NewFabric("mesh", 4); err == nil {
		t.Error("unknown fabric kind accepted")
	}
	if _, err := NewFabric("hypercube", 6); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
	for _, kind := range FabricKinds() {
		if _, err := NewFabric(kind, 1); err != nil {
			t.Errorf("single-node %s rejected: %v", kind, err)
		}
	}
}

func TestFabricLinkCounts(t *testing.T) {
	t.Parallel()
	cases := []struct {
		kind  string
		nodes int
		links int
	}{
		{"ring", 2, 2},  // the two directions collapse onto one neighbour pair
		{"ring", 8, 16}, // 2 directed links per node
		{"torus", 16, 64},
		{"torus", 12, 48},    // 3x4 grid
		{"hypercube", 8, 24}, // log2(8) = 3 links per node, directed
		{"hypercube", 1, 0},
	}
	for _, c := range cases {
		f, err := NewFabric(c.kind, c.nodes)
		if err != nil {
			t.Fatalf("%s@%d: %v", c.kind, c.nodes, err)
		}
		if f.Links() != c.links {
			t.Errorf("%s@%d: %d links, want %d", c.kind, c.nodes, f.Links(), c.links)
		}
	}
}

// TestFabricRoutesAreMinimalAndLinked is the property test: for every
// kind at several sizes, every route starts and ends at its endpoints,
// steps only along registered links, never revisits a node, and matches
// the topology's shortest-path distance.
func TestFabricRoutesAreMinimalAndLinked(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		kind  string
		nodes int
	}{
		{"ring", 2}, {"ring", 5}, {"ring", 8},
		{"torus", 4}, {"torus", 12}, {"torus", 16},
		{"hypercube", 2}, {"hypercube", 8}, {"hypercube", 16},
	} {
		f, err := NewFabric(c.kind, c.nodes)
		if err != nil {
			t.Fatal(err)
		}
		dist := bfsDistances(f)
		for a := 0; a < c.nodes; a++ {
			for b := 0; b < c.nodes; b++ {
				path := f.Route(a, b)
				if path[0] != a || path[len(path)-1] != b {
					t.Fatalf("%s route %d->%d has wrong endpoints: %v", f, a, b, path)
				}
				if got, want := len(path)-1, dist[a][b]; got != want {
					t.Errorf("%s route %d->%d takes %d hops, shortest is %d", f, a, b, got, want)
				}
				seen := map[int]bool{a: true}
				for i := 1; i < len(path); i++ {
					if _, ok := f.LinkID(path[i-1], path[i]); !ok {
						t.Fatalf("%s route %d->%d uses missing link %d->%d", f, a, b, path[i-1], path[i])
					}
					if seen[path[i]] {
						t.Fatalf("%s route %d->%d revisits node %d", f, a, b, path[i])
					}
					seen[path[i]] = true
				}
				if links := f.RouteLinks(a, b); len(links) != len(path)-1 {
					t.Fatalf("%s RouteLinks(%d,%d) has %d links for a %d-hop path", f, a, b, len(links), len(path)-1)
				}
			}
		}
	}
}

// bfsDistances computes all-pairs shortest hop counts over the fabric's
// links — the oracle Route is checked against.
func bfsDistances(f *Fabric) [][]int {
	n := f.Nodes()
	adj := make([][]int, n)
	for id := 0; id < f.Links(); id++ {
		a, b := f.Edge(id)
		adj[a] = append(adj[a], b)
	}
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range adj[x] {
				if d[y] < 0 {
					d[y] = d[x] + 1
					queue = append(queue, y)
				}
			}
		}
		dist[s] = d
	}
	return dist
}

func TestFabricEdgeIDsRoundTrip(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for _, kind := range FabricKinds() {
		n := 16
		f, err := NewFabric(kind, n)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < f.Links(); id++ {
			a, b := f.Edge(id)
			got, ok := f.LinkID(a, b)
			if !ok || got != id {
				t.Errorf("%s: Edge(%d) = %d->%d but LinkID maps it to %d (ok=%v)", f, id, a, b, got, ok)
			}
		}
		if ids := f.SortedLinks(); len(ids) != f.Links() {
			t.Errorf("%s: SortedLinks has %d entries, want %d", f, len(ids), f.Links())
		}
		// LinkID on random non-adjacent pairs must miss rather than invent.
		for i := 0; i < 50; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if _, ok := f.LinkID(a, b); ok {
				if len(f.Route(a, b)) != 2 {
					t.Errorf("%s: LinkID(%d,%d) exists but nodes are not adjacent", f, a, b)
				}
			}
		}
	}
}
