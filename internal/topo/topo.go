// Package topo describes the node and rank topology of a many-core
// machine: how many sockets, NUMA domains and cores a node has, how MPI-like
// ranks are laid out across nodes, and the locality level (intra-NUMA,
// intra-socket, inter-socket, inter-node) between any two ranks.
//
// The paper's systems are hierarchical: Sapphire Rapids nodes have 2 sockets
// x 4 NUMA domains x 14 cores (112 cores/node); MI300A nodes have 96 cores.
// Ranks are block-mapped: rank r lives on node r/ppn with local rank r%ppn,
// and local ranks fill cores in order, which is how the paper launches jobs
// ("none of the groups were explicitly mapped to regions of locality").
package topo

import "fmt"

// Spec describes the shape of a single node.
type Spec struct {
	Sockets       int // CPU sockets per node
	NumaPerSocket int // NUMA domains per socket
	CoresPerNuma  int // cores per NUMA domain
}

// CoresPerNode returns the total core count of a node.
func (s Spec) CoresPerNode() int { return s.Sockets * s.NumaPerSocket * s.CoresPerNuma }

// CoresPerSocket returns the core count of one socket.
func (s Spec) CoresPerSocket() int { return s.NumaPerSocket * s.CoresPerNuma }

// NumaPerNode returns the total NUMA domain count of a node.
func (s Spec) NumaPerNode() int { return s.Sockets * s.NumaPerSocket }

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Sockets <= 0 || s.NumaPerSocket <= 0 || s.CoresPerNuma <= 0 {
		return fmt.Errorf("topo: invalid spec %+v: all fields must be positive", s)
	}
	return nil
}

func (s Spec) String() string {
	return fmt.Sprintf("%d sockets x %d NUMA x %d cores (%d cores/node)",
		s.Sockets, s.NumaPerSocket, s.CoresPerNuma, s.CoresPerNode())
}

// SapphireRapids is the node shape of LLNL Dane and SNL Amber:
// 112 cores split across 2 sockets and 4 NUMA domains per socket
// (14 cores per NUMA region), as described in the paper's introduction.
func SapphireRapids() Spec { return Spec{Sockets: 2, NumaPerSocket: 4, CoresPerNuma: 14} }

// MI300A is the node shape of LLNL Tuolomne: 96 cores across 4 APU dies,
// modeled as 4 NUMA domains of 24 cores on a single socket package.
func MI300A() Spec { return Spec{Sockets: 1, NumaPerSocket: 4, CoresPerNuma: 24} }

// Level is the locality level between two ranks, ordered from closest to
// farthest. Costs in the network model grow with the level.
type Level int

const (
	// Self means the two ranks are the same rank.
	Self Level = iota
	// IntraNuma means same node, same socket, same NUMA domain.
	IntraNuma
	// IntraSocket means same node and socket, different NUMA domain.
	IntraSocket
	// InterSocket means same node, different socket.
	InterSocket
	// InterNode means different nodes.
	InterNode
)

func (l Level) String() string {
	switch l {
	case Self:
		return "self"
	case IntraNuma:
		return "intra-numa"
	case IntraSocket:
		return "intra-socket"
	case InterSocket:
		return "inter-socket"
	case InterNode:
		return "inter-node"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Mapping is a block layout of ranks onto a machine: ppn consecutive ranks
// per node, local ranks assigned to cores in order.
type Mapping struct {
	spec  Spec
	nodes int
	ppn   int
}

// NewMapping builds a mapping of nodes*ppn ranks. ppn must not exceed the
// node's core count (the paper always uses all cores, but undersubscription
// is allowed for tests).
func NewMapping(spec Spec, nodes, ppn int) (*Mapping, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("topo: nodes must be positive, got %d", nodes)
	}
	if ppn <= 0 || ppn > spec.CoresPerNode() {
		return nil, fmt.Errorf("topo: ppn %d out of range 1..%d", ppn, spec.CoresPerNode())
	}
	return &Mapping{spec: spec, nodes: nodes, ppn: ppn}, nil
}

// Spec returns the node shape.
func (m *Mapping) Spec() Spec { return m.spec }

// Nodes returns the node count.
func (m *Mapping) Nodes() int { return m.nodes }

// PPN returns the ranks per node.
func (m *Mapping) PPN() int { return m.ppn }

// Size returns the total rank count.
func (m *Mapping) Size() int { return m.nodes * m.ppn }

// NodeOf returns the node index of a rank.
func (m *Mapping) NodeOf(rank int) int { return rank / m.ppn }

// LocalRank returns the on-node rank (0..ppn-1) of a rank.
func (m *Mapping) LocalRank(rank int) int { return rank % m.ppn }

// Rank returns the global rank for a (node, local) pair.
func (m *Mapping) Rank(node, local int) int { return node*m.ppn + local }

// CoreOf returns the core index a local rank is pinned to.
func (m *Mapping) CoreOf(local int) int { return local }

// NumaOf returns the node-wide NUMA index (0..NumaPerNode-1) of a local rank.
func (m *Mapping) NumaOf(local int) int { return local / m.spec.CoresPerNuma }

// SocketOf returns the socket index of a local rank.
func (m *Mapping) SocketOf(local int) int { return local / m.spec.CoresPerSocket() }

// LevelBetween returns the locality level between two global ranks.
func (m *Mapping) LevelBetween(a, b int) Level {
	if a == b {
		return Self
	}
	if m.NodeOf(a) != m.NodeOf(b) {
		return InterNode
	}
	la, lb := m.LocalRank(a), m.LocalRank(b)
	if m.SocketOf(la) != m.SocketOf(lb) {
		return InterSocket
	}
	if m.NumaOf(la) != m.NumaOf(lb) {
		return IntraSocket
	}
	return IntraNuma
}

// Validate checks that rank is in range.
func (m *Mapping) Validate(rank int) error {
	if rank < 0 || rank >= m.Size() {
		return fmt.Errorf("topo: rank %d out of range 0..%d", rank, m.Size()-1)
	}
	return nil
}

func (m *Mapping) String() string {
	return fmt.Sprintf("%d nodes x %d ppn on %s", m.nodes, m.ppn, m.spec)
}
