package topo

import (
	"testing"
	"testing/quick"
)

func TestSpecCounts(t *testing.T) {
	t.Parallel()
	sr := SapphireRapids()
	if got := sr.CoresPerNode(); got != 112 {
		t.Errorf("SapphireRapids cores/node = %d, want 112", got)
	}
	if got := sr.CoresPerSocket(); got != 56 {
		t.Errorf("SapphireRapids cores/socket = %d, want 56", got)
	}
	if got := sr.NumaPerNode(); got != 8 {
		t.Errorf("SapphireRapids NUMA/node = %d, want 8", got)
	}
	mi := MI300A()
	if got := mi.CoresPerNode(); got != 96 {
		t.Errorf("MI300A cores/node = %d, want 96", got)
	}
}

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	if err := SapphireRapids().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for _, s := range []Spec{{}, {Sockets: 1}, {Sockets: 1, NumaPerSocket: 1}, {Sockets: -1, NumaPerSocket: 1, CoresPerNuma: 1}} {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", s)
		}
	}
}

func TestNewMappingErrors(t *testing.T) {
	t.Parallel()
	spec := SapphireRapids()
	if _, err := NewMapping(spec, 0, 112); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewMapping(spec, 2, 0); err == nil {
		t.Error("zero ppn accepted")
	}
	if _, err := NewMapping(spec, 2, 113); err == nil {
		t.Error("oversubscribed ppn accepted")
	}
	if _, err := NewMapping(Spec{}, 2, 4); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestMappingRoundTrip(t *testing.T) {
	t.Parallel()
	m, err := NewMapping(SapphireRapids(), 4, 112)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 448 {
		t.Fatalf("Size = %d, want 448", m.Size())
	}
	// Property: Rank(NodeOf(r), LocalRank(r)) == r for all ranks.
	f := func(raw uint16) bool {
		r := int(raw) % m.Size()
		return m.Rank(m.NodeOf(r), m.LocalRank(r)) == r && m.Validate(r) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if err := m.Validate(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if err := m.Validate(448); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestLocalityHierarchy(t *testing.T) {
	t.Parallel()
	m, err := NewMapping(SapphireRapids(), 2, 112)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want Level
	}{
		{0, 0, Self},
		{0, 1, IntraNuma},    // cores 0,1 in NUMA 0
		{0, 13, IntraNuma},   // both in NUMA 0 (14 cores per NUMA)
		{0, 14, IntraSocket}, // NUMA 0 vs NUMA 1, socket 0
		{0, 55, IntraSocket}, // last core of socket 0
		{0, 56, InterSocket}, // first core of socket 1
		{0, 111, InterSocket},
		{0, 112, InterNode}, // first rank of node 1
		{111, 223, InterNode},
	}
	for _, tc := range cases {
		if got := m.LevelBetween(tc.a, tc.b); got != tc.want {
			t.Errorf("LevelBetween(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := m.LevelBetween(tc.b, tc.a); got != tc.want {
			t.Errorf("LevelBetween(%d, %d) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

// TestLevelMonotoneProperty: the level between two ranks is Self iff equal,
// InterNode iff nodes differ, and symmetric — for arbitrary shapes.
func TestLevelMonotoneProperty(t *testing.T) {
	t.Parallel()
	f := func(sockets, numa, cores, nodes, a, b uint8) bool {
		spec := Spec{Sockets: int(sockets%3) + 1, NumaPerSocket: int(numa%3) + 1, CoresPerNuma: int(cores%4) + 1}
		m, err := NewMapping(spec, int(nodes%4)+1, spec.CoresPerNode())
		if err != nil {
			return false
		}
		ra, rb := int(a)%m.Size(), int(b)%m.Size()
		l := m.LevelBetween(ra, rb)
		if l != m.LevelBetween(rb, ra) {
			return false
		}
		if (l == Self) != (ra == rb) {
			return false
		}
		if (l == InterNode) != (m.NodeOf(ra) != m.NodeOf(rb)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	t.Parallel()
	for l, want := range map[Level]string{
		Self: "self", IntraNuma: "intra-numa", IntraSocket: "intra-socket",
		InterSocket: "inter-socket", InterNode: "inter-node", Level(99): "Level(99)",
	} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestStringFormatting(t *testing.T) {
	t.Parallel()
	m, err := NewMapping(MI300A(), 32, 96)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() == "" || m.Spec().String() == "" {
		t.Error("empty String()")
	}
	if m.PPN() != 96 || m.Nodes() != 32 {
		t.Errorf("PPN/Nodes = %d/%d", m.PPN(), m.Nodes())
	}
	if m.CoreOf(5) != 5 {
		t.Errorf("CoreOf(5) = %d", m.CoreOf(5))
	}
}
