// Package trace records per-phase timings inside collective algorithms —
// the instrumentation behind the paper's Figures 13-16, which break each
// algorithm into its internal gathers, scatters and intra-/inter-node
// all-to-all exchanges. Each rank records into its own Recorder using the
// communicator's clock (wall time on the live runtime, virtual time in the
// simulator); the bench harness merges recorders across ranks by taking the
// maximum per phase, since a collective phase ends when its slowest rank
// finishes.
package trace

import "sort"

// Phase names one internal stage of an algorithm.
type Phase string

// The phases the paper's breakdown figures report.
const (
	PhaseGather  Phase = "gather"  // intra-node gather to leaders
	PhaseScatter Phase = "scatter" // intra-node scatter from leaders
	PhaseInter   Phase = "inter"   // inter-node (or inter-region) all-to-all
	PhaseIntra   Phase = "intra"   // intra-node (or intra-region) all-to-all
	PhaseRepack  Phase = "repack"  // data repacking between stages
	PhaseReduce  Phase = "reduce"  // operator application in reduction schedules
	PhaseTotal   Phase = "total"   // whole collective
)

// Recorder accumulates phase durations for one rank. A nil Recorder is
// valid and records nothing, so instrumentation can be compiled in
// unconditionally.
type Recorder struct {
	clock   func() float64
	elapsed map[Phase]float64
}

// NewRecorder returns a recorder reading the given clock (seconds).
func NewRecorder(clock func() float64) *Recorder {
	return &Recorder{clock: clock, elapsed: make(map[Phase]float64)}
}

// Reset clears all recorded phases (called at the start of each collective
// so Phases reflects the last call).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for k := range r.elapsed {
		delete(r.elapsed, k)
	}
}

// Time starts timing a phase and returns the function that stops it,
// accumulating into the phase's total:
//
//	defer rec.Time(trace.PhaseGather)()
func (r *Recorder) Time(p Phase) func() {
	if r == nil {
		return func() {}
	}
	t0 := r.clock()
	return func() { r.elapsed[p] += r.clock() - t0 }
}

// Add accumulates d seconds into a phase directly.
func (r *Recorder) Add(p Phase, d float64) {
	if r == nil {
		return
	}
	r.elapsed[p] += d
}

// Get returns the accumulated seconds for a phase (0 if absent or nil).
func (r *Recorder) Get(p Phase) float64 {
	if r == nil {
		return 0
	}
	return r.elapsed[p]
}

// Snapshot returns a copy of all recorded phases.
func (r *Recorder) Snapshot() map[Phase]float64 {
	if r == nil {
		return nil
	}
	out := make(map[Phase]float64, len(r.elapsed))
	for k, v := range r.elapsed {
		out[k] = v
	}
	return out
}

// MaxMerge combines per-rank snapshots by taking the per-phase maximum: a
// collective phase is as slow as its slowest rank.
func MaxMerge(snaps []map[Phase]float64) map[Phase]float64 {
	out := make(map[Phase]float64)
	for _, s := range snaps {
		for k, v := range s {
			if v > out[k] {
				out[k] = v
			}
		}
	}
	return out
}

// SortedPhases returns the phases of a merged snapshot in stable name
// order, for deterministic report formatting.
func SortedPhases(m map[Phase]float64) []Phase {
	out := make([]Phase, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
