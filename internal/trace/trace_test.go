package trace

import (
	"testing"
)

func TestRecorderAccumulates(t *testing.T) {
	t.Parallel()
	now := 0.0
	r := NewRecorder(func() float64 { return now })
	stop := r.Time(PhaseGather)
	now = 2.5
	stop()
	stop = r.Time(PhaseGather)
	now = 3.0
	stop()
	if got := r.Get(PhaseGather); got != 3.0 {
		t.Errorf("accumulated gather = %g, want 3.0", got)
	}
	r.Add(PhaseInter, 1.25)
	if got := r.Get(PhaseInter); got != 1.25 {
		t.Errorf("Add: %g", got)
	}
	snap := r.Snapshot()
	if snap[PhaseGather] != 3.0 || snap[PhaseInter] != 1.25 {
		t.Errorf("snapshot = %v", snap)
	}
	// Snapshot must be a copy.
	snap[PhaseGather] = 99
	if r.Get(PhaseGather) != 3.0 {
		t.Error("snapshot aliases recorder state")
	}
	r.Reset()
	if r.Get(PhaseGather) != 0 {
		t.Error("reset did not clear")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	t.Parallel()
	var r *Recorder
	r.Reset()
	r.Time(PhaseTotal)()
	r.Add(PhaseIntra, 1)
	if r.Get(PhaseIntra) != 0 || r.Snapshot() != nil {
		t.Error("nil recorder misbehaved")
	}
}

func TestMaxMerge(t *testing.T) {
	t.Parallel()
	merged := MaxMerge([]map[Phase]float64{
		{PhaseGather: 1, PhaseInter: 5},
		{PhaseGather: 3, PhaseIntra: 2},
		nil,
	})
	if merged[PhaseGather] != 3 || merged[PhaseInter] != 5 || merged[PhaseIntra] != 2 {
		t.Errorf("merged = %v", merged)
	}
}

func TestSortedPhases(t *testing.T) {
	t.Parallel()
	phases := SortedPhases(map[Phase]float64{PhaseTotal: 1, PhaseGather: 2, PhaseInter: 3})
	want := []Phase{PhaseGather, PhaseInter, PhaseTotal}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", phases, want)
		}
	}
}
